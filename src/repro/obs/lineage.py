"""End-to-end flow lineage: cross-node taint provenance trees.

The crossing trace (:mod:`repro.core.trace`) answers "which boundary did
this taint cross"; this module answers the question operators actually
ask — *show me every hop PII from source X took before it reached sink
Y, with per-hop latency*.  It stitches three existing event streams into
**flow trees**, one per ``(tag value, origin LocalId)`` flow:

* **source registrations** (``SourceSinkRegistry.source``) root the tree;
* **crossing spans** (PR 4's parked-span channel adoption) become child
  edges — a send parents under the frontier node of its sender, the
  receive that adopts the same span id closes the hop with the remote
  timestamp, so per-hop latency and byte counts come for free and **no
  new wire bytes** are needed: lineage context rides the span ids the
  trace already correlates;
* **sink arrivals** (``SourceSinkRegistry.sink``) complete the flow.

Budget interactions are explicit, never silent: a flow sampled out by
``sample_every`` appears as a *stub* tree whose root disposition is
``sampled_out``, and a send gated by the overhead-budget controller
leaves a :class:`GatedCut` marker on every flow it truncated — partial
trees are marked partial, not missing.

The cluster-side :class:`LineageStore` is bounded (``max_flows``) with
eviction accounting in the ``CrossingTrace.dropped`` tradition: a store
that forgot flows says so (:attr:`LineageStore.evicted`,
``dista_lineage_flows_evicted_total``).

Hot-path discipline: every recorder hook is reached only *behind* the
``labels is None`` zero-taint fast path — untainted traffic never
constructs an event — and the per-node :class:`LineageRecorder` carries
an ``enabled`` flag callers check first, so the disabled configuration
(:data:`NULL_LINEAGE`) costs one attribute read.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.registry import FragmentHistogram

#: Root dispositions.
TRACKED = "tracked"  # rooted by an admitted source registration
IMPLICIT = "implicit"  # first seen mid-flight (no registry source event)
SAMPLED_OUT = "sampled_out"  # flow-sampling rejected it (stub tree)

#: Hop dispositions.
TRACED = "traced"  # send and receive correlated by span
UNCORRELATED = "uncorrelated"  # receive with no matching send

#: Default bound on retained flows (evictions are counted, not silent).
DEFAULT_MAX_FLOWS = 4096

#: Tree-depth histogram layout: powers of two from depth 1; 16 buckets
#: cover any realistic hop chain.
DEPTH_BUCKETS = 16


@dataclass
class SourceRoot:
    """The root of a flow tree: where (and whether) the flow started."""

    node: Optional[str]
    descriptor: str
    detail: str = ""
    timestamp: float = 0.0
    disposition: str = TRACKED

    def as_dict(self) -> dict:
        return {
            "node": self.node,
            "descriptor": self.descriptor,
            "detail": self.detail,
            "timestamp": self.timestamp,
            "disposition": self.disposition,
        }


@dataclass
class Hop:
    """One cross-process hop: a send and the receive draining its span."""

    span: int
    sender: Optional[str] = None
    send_method: Optional[str] = None
    sent_bytes: int = 0
    send_timestamp: Optional[float] = None
    receiver: Optional[str] = None
    receive_method: Optional[str] = None
    received_bytes: int = 0
    receive_timestamp: Optional[float] = None
    disposition: str = TRACED

    @property
    def complete(self) -> bool:
        return self.sender is not None and self.receiver is not None

    @property
    def latency(self) -> Optional[float]:
        """Receive-side minus send-side monotonic timestamp (one-way)."""
        if self.send_timestamp is None or self.receive_timestamp is None:
            return None
        return max(0.0, self.receive_timestamp - self.send_timestamp)

    def as_dict(self) -> dict:
        return {
            "span": self.span,
            "sender": self.sender,
            "send_method": self.send_method,
            "sent_bytes": self.sent_bytes,
            "send_timestamp": self.send_timestamp,
            "receiver": self.receiver,
            "receive_method": self.receive_method,
            "received_bytes": self.received_bytes,
            "receive_timestamp": self.receive_timestamp,
            "latency": self.latency,
            "disposition": self.disposition,
        }


@dataclass
class SinkArrival:
    """One sink observation that saw this flow's tag."""

    node: str
    descriptor: str
    detail: str = ""
    timestamp: float = 0.0

    def as_dict(self) -> dict:
        return {
            "node": self.node,
            "descriptor": self.descriptor,
            "detail": self.detail,
            "timestamp": self.timestamp,
        }


@dataclass
class GatedCut:
    """A budget-gated send that truncated this flow (explicit, not silent)."""

    node: str
    method: str
    timestamp: float = 0.0

    def as_dict(self) -> dict:
        return {"node": self.node, "method": self.method, "timestamp": self.timestamp}


class TreeNode:
    """One node of a flow tree: the root, or one hop's landing point."""

    __slots__ = ("node", "hop", "depth", "children")

    def __init__(self, node: Optional[str], hop: Optional[Hop], depth: int):
        #: The cluster node this tree position lives on (the receiver
        #: for a completed hop; the sender while the hop is in flight).
        self.node = node
        self.hop = hop
        self.depth = depth
        self.children: list = []


class FlowTree:
    """One flow: a source-rooted tree of cross-process hops.

    Hops attach eagerly: a send parents under its sender's *frontier*
    node (the tree position where the flow last landed on that node —
    the root for the origin), and the receive adopting the same span id
    completes the edge and advances the receiver's frontier.  Split
    reads merge into the existing hop by span instead of forking a
    child, mirroring the trace's byte-budget correlation.
    """

    def __init__(self, key, root: SourceRoot):
        self.key = key
        self.tag_value = key[0] if isinstance(key, tuple) and key else key
        self._gid = 0
        #: Tag instances seen with GID still unassigned (one interned
        #: instance per node tree); re-read lazily by :attr:`gid`
        #: because the Taint Map stamps the sender's tag only *after*
        #: the wrapper boundary recorded the send crossing.
        self._tag_refs: list = []
        self.root = root
        self.root_node = TreeNode(root.node, None, 1)
        self.sinks: list = []
        self.gated: list = []
        self.completed = False
        self.max_depth = 1
        #: Hop tree nodes in send order (the hop-ordering ground truth).
        self.hop_nodes: list = []
        self._by_span: dict = {}
        self._frontier: dict = {}
        if root.node is not None:
            self._frontier[root.node] = self.root_node

    @property
    def gid(self) -> int:
        """Taint Map GlobalID of this flow's tag (0 until assigned)."""
        if not self._gid:
            for tag in self._tag_refs:
                if tag.global_id:
                    self._gid = tag.global_id
                    break
            if self._gid:
                self._tag_refs.clear()
        return self._gid

    def note_tag(self, tag) -> None:
        """Remember a tag instance so :attr:`gid` can read its GID once
        the Taint Map assigns one (lazy, on first network crossing)."""
        if self._gid:
            return
        if tag.global_id:
            self._gid = tag.global_id
            self._tag_refs.clear()
        elif not any(existing is tag for existing in self._tag_refs):
            self._tag_refs.append(tag)

    # -- assembly (called by the store, under its lock) -------------------- #

    def record_send(self, crossing) -> None:
        existing = self._by_span.get(crossing.span)
        if existing is not None:
            # Same span sent twice for one flow (chunked writes under a
            # single correlation): fold the bytes into the open hop.
            existing.hop.sent_bytes += crossing.data_bytes
            return
        parent = self._frontier.get(crossing.node, self.root_node)
        hop = Hop(
            span=crossing.span,
            sender=crossing.node,
            send_method=crossing.method,
            sent_bytes=crossing.data_bytes,
            send_timestamp=crossing.timestamp,
        )
        node = TreeNode(crossing.node, hop, parent.depth + 1)
        parent.children.append(node)
        self.hop_nodes.append(node)
        self._by_span[crossing.span] = node
        self.max_depth = max(self.max_depth, node.depth)

    def record_receive(self, crossing) -> Optional[Hop]:
        """Close (or extend) the hop for a receive; returns the hop when
        this receive completed it (for latency telemetry)."""
        node = self._by_span.get(crossing.span)
        if node is None or node.hop is None:
            # No matching send for this flow: an uninstrumented peer or
            # coalesced wire traffic.  Attach under the root, explicitly
            # marked rather than guessed.
            hop = Hop(
                span=crossing.span,
                receiver=crossing.node,
                receive_method=crossing.method,
                received_bytes=crossing.data_bytes,
                receive_timestamp=crossing.timestamp,
                disposition=UNCORRELATED,
            )
            tree_node = TreeNode(crossing.node, hop, self.root_node.depth + 1)
            self.root_node.children.append(tree_node)
            self.hop_nodes.append(tree_node)
            self._by_span[crossing.span] = tree_node
            self.max_depth = max(self.max_depth, tree_node.depth)
            self._frontier[crossing.node] = tree_node
            return hop
        hop = node.hop
        if hop.receiver is None:
            hop.receiver = crossing.node
            hop.receive_method = crossing.method
            hop.received_bytes = crossing.data_bytes
            hop.receive_timestamp = crossing.timestamp
            node.node = crossing.node
            self._frontier[crossing.node] = node
            return hop
        # A split read draining the same span: accumulate bytes, keep
        # the first receive's timestamp (latency = first byte arrival).
        hop.received_bytes += crossing.data_bytes
        return None

    def record_sink(self, arrival: SinkArrival) -> bool:
        """Append a sink arrival; True when it completed the flow."""
        self.sinks.append(arrival)
        if self.completed:
            return False
        self.completed = True
        return True

    # -- introspection ----------------------------------------------------- #

    @property
    def hops(self) -> list:
        """Hops in send order."""
        return [n.hop for n in self.hop_nodes]

    @property
    def sink_depth(self) -> int:
        """Tree depth including the sink level (root = 1)."""
        best = self.root_node.depth
        for arrival in self.sinks:
            landing = self._frontier.get(arrival.node, self.root_node)
            best = max(best, landing.depth + 1)
        return best

    @property
    def partial(self) -> bool:
        """True when this tree is explicitly incomplete: sampled out,
        budget-gated, or carrying uncorrelated/in-flight hops."""
        if self.root.disposition == SAMPLED_OUT or self.gated:
            return True
        return any(
            h.disposition == UNCORRELATED or not h.complete for h in self.hops
        )

    def as_dict(self) -> dict:
        hops = []
        for node in self.hop_nodes:
            entry = node.hop.as_dict()
            entry["depth"] = node.depth
            hops.append(entry)
        return {
            "tag": str(self.tag_value),
            "gid": self.gid,
            "completed": self.completed,
            "partial": self.partial,
            "depth": self.max_depth,
            "sink_depth": self.sink_depth,
            "root": self.root.as_dict(),
            "hops": hops,
            "sinks": [s.as_dict() for s in self.sinks],
            "gated": [g.as_dict() for g in self.gated],
        }

    def render(self) -> str:
        status = "completed" if self.completed else "open"
        flags = []
        if self.partial:
            flags.append("partial")
        gid = f" gid={self.gid}" if self.gid else ""
        lines = [
            f"flow {self.tag_value!r}{gid} [{status}"
            + (", " + ", ".join(flags) if flags else "")
            + "]"
        ]
        root = self.root
        lines.append(
            f"  source {root.node or '?'} {root.descriptor or '(implicit)'} "
            f"[{root.disposition}]"
        )

        def walk(node: TreeNode, indent: str) -> None:
            for child in node.children:
                hop = child.hop
                base = root.timestamp or (hop.send_timestamp or 0.0)
                if hop.disposition == UNCORRELATED:
                    desc = (
                        f"?->{hop.receiver} ?/{hop.receive_method} "
                        f"?/{hop.received_bytes}B [uncorrelated]"
                    )
                elif hop.receiver is None:
                    desc = (
                        f"{hop.sender}->? {hop.send_method}/? "
                        f"{hop.sent_bytes}B/? [in flight]"
                    )
                else:
                    latency = hop.latency
                    lat = f" +{latency * 1e6:.0f}us" if latency is not None else ""
                    desc = (
                        f"{hop.sender}->{hop.receiver} "
                        f"{hop.send_method}/{hop.receive_method} "
                        f"{hop.sent_bytes}B/{hop.received_bytes}B{lat}"
                    )
                offset = ""
                if hop.send_timestamp is not None and root.timestamp:
                    offset = f" t=+{(hop.send_timestamp - base) * 1e6:.0f}us"
                lines.append(f"{indent}└─ s{hop.span} {desc}{offset}")
                walk(child, indent + "   ")

        walk(self.root_node, "  ")
        for arrival in self.sinks:
            lines.append(f"  ✓ sink {arrival.node} {arrival.descriptor}")
        for cut in self.gated:
            lines.append(f"  ✗ gated send {cut.method} on {cut.node} (budget)")
        return "\n".join(lines)


class LineageStore:
    """Bounded cluster-side store of flow trees, with a query API.

    One store per cluster; every node's :class:`LineageRecorder` and the
    cluster's :class:`~repro.core.trace.CrossingTrace` feed it.  At
    ``max_flows`` the oldest flow is evicted — completed flows first,
    then open ones — and every eviction is counted
    (:attr:`evicted`, ``dista_lineage_flows_evicted_total``): a store
    that forgot lineage never looks complete.
    """

    def __init__(self, max_flows: int = DEFAULT_MAX_FLOWS):
        if max_flows < 1:
            raise ValueError(f"max_flows must be >= 1, got {max_flows}")
        self.max_flows = max_flows
        self._lock = threading.Lock()
        self._flows: "OrderedDict" = OrderedDict()
        self._stub_counter = 0
        self.evicted = 0
        self.completed_total = 0
        self._depth_hist = FragmentHistogram(lowest=1.0, buckets=DEPTH_BUCKETS)
        self._hop_hists: dict = {}

    # -- ingestion --------------------------------------------------------- #

    def _flow_for(self, tag, origin: Optional[str] = None) -> FlowTree:
        key = tag.key()
        flow = self._flows.get(key)
        if flow is None:
            flow = FlowTree(
                key,
                SourceRoot(
                    node=origin,
                    descriptor="",
                    timestamp=time.monotonic(),
                    disposition=IMPLICIT,
                ),
            )
            self._flows[key] = flow
            self._enforce_bound()
        flow.note_tag(tag)
        return flow

    def record_source(
        self, node: str, descriptor: str, tag, detail: str = "", timestamp=None
    ) -> None:
        """An admitted source registration: the root of a tracked flow."""
        timestamp = time.monotonic() if timestamp is None else timestamp
        with self._lock:
            key = tag.key()
            flow = self._flows.get(key)
            if flow is None:
                flow = FlowTree(
                    key, SourceRoot(node, descriptor, detail, timestamp, TRACKED)
                )
                self._flows[key] = flow
                self._enforce_bound()
            elif flow.root.disposition == IMPLICIT:
                # The crossing beat the source event here; upgrade the
                # implicit root in place.
                flow.root.node = node
                flow.root.descriptor = descriptor
                flow.root.detail = detail
                flow.root.timestamp = timestamp
                flow.root.disposition = TRACKED
                flow.root_node.node = node
                flow._frontier.setdefault(node, flow.root_node)
            flow.note_tag(tag)

    def record_sampled_out(self, node: str, descriptor: str, timestamp=None) -> None:
        """A source firing rejected by flow sampling: a stub tree whose
        root says so — sampled-out flows are marked, never missing."""
        timestamp = time.monotonic() if timestamp is None else timestamp
        with self._lock:
            self._stub_counter += 1
            key = (SAMPLED_OUT, node, descriptor, self._stub_counter)
            self._flows[key] = FlowTree(
                key, SourceRoot(node, descriptor, "", timestamp, SAMPLED_OUT)
            )
            self._enforce_bound()

    def record_crossing(self, crossing) -> None:
        """One tainted boundary crossing (fed by the CrossingTrace,
        inside its record path): becomes a hop edge on every flow whose
        tag the payload carried."""
        is_send = crossing.direction == "send"
        with self._lock:
            for tag in crossing.tags:
                flow = self._flow_for(
                    tag, origin=crossing.node if is_send else None
                )
                if is_send:
                    flow.record_send(crossing)
                else:
                    hop = flow.record_receive(crossing)
                    if hop is not None and hop.latency is not None:
                        site = hop.send_method or hop.receive_method or "?"
                        hist = self._hop_hists.get(site)
                        if hist is None:
                            hist = self._hop_hists[site] = FragmentHistogram()
                        hist.observe(hop.latency)

    def record_sink(
        self, node: str, descriptor: str, tags, detail: str = "", timestamp=None
    ) -> None:
        """A sink observation carrying tags: completes each tag's flow."""
        timestamp = time.monotonic() if timestamp is None else timestamp
        arrival = SinkArrival(node, descriptor, detail, timestamp)
        with self._lock:
            for tag in tags:
                flow = self._flow_for(tag, origin=None)
                if flow.record_sink(arrival):
                    self.completed_total += 1
                    self._depth_hist.observe(flow.sink_depth)

    def record_gated(self, node: str, method: str, tags, timestamp=None) -> None:
        """A budget-gated send: an explicit cut marker on each flow the
        stripped payload carried (the flow continues untracked)."""
        timestamp = time.monotonic() if timestamp is None else timestamp
        with self._lock:
            for tag in tags:
                flow = self._flow_for(tag, origin=node)
                flow.gated.append(GatedCut(node, method, timestamp))

    def _enforce_bound(self) -> None:
        while len(self._flows) > self.max_flows:
            victim_key = None
            for key, flow in self._flows.items():
                if flow.completed:
                    victim_key = key
                    break
            if victim_key is None:
                victim_key = next(iter(self._flows))
            del self._flows[victim_key]
            self.evicted += 1

    # -- queries ----------------------------------------------------------- #

    def flows(self) -> list:
        """Every retained flow, oldest first."""
        with self._lock:
            return list(self._flows.values())

    def completed_flows(self) -> list:
        with self._lock:
            return [f for f in self._flows.values() if f.completed]

    def open_flows(self) -> list:
        with self._lock:
            return [f for f in self._flows.values() if not f.completed]

    def lineage_of(self, gid: int) -> list:
        """Flows whose tag was assigned the given Taint Map GlobalID."""
        with self._lock:
            return [f for f in self._flows.values() if gid and f.gid == gid]

    def flows_between(self, source_node: str, sink_node: str) -> list:
        """Flows rooted on ``source_node`` that reached a sink on
        ``sink_node`` — the "did PII from X reach Y" query."""
        with self._lock:
            return [
                f
                for f in self._flows.values()
                if f.root.node == source_node
                and any(s.node == sink_node for s in f.sinks)
            ]

    def hops(self, tag_value) -> Optional[FlowTree]:
        """The flow tree for a tag value (most recent when reused) —
        the tree-shaped upgrade of ``CrossingTrace.hops``'s node path."""
        with self._lock:
            found = None
            for flow in self._flows.values():
                if flow.tag_value == tag_value:
                    found = flow
            return found

    # -- reporting / export ------------------------------------------------- #

    def describe(self) -> str:
        with self._lock:
            retained = len(self._flows)
            completed = sum(1 for f in self._flows.values() if f.completed)
            evicted = self.evicted
        return (
            f"LineageStore: {retained} flow(s) retained ({completed} completed), "
            f"{evicted} evicted (max {self.max_flows})"
        )

    def render(self) -> str:
        lines = [f"=== Flow lineage ({self.describe()}) ==="]
        for flow in self.flows():
            lines.append(flow.render())
        if self.evicted:
            lines.append(
                f"!!! incomplete: {self.evicted} flow(s) evicted at "
                f"max_flows {self.max_flows}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        with self._lock:
            flows = [f.as_dict() for f in self._flows.values()]
            return {
                "flows": flows,
                "open": sum(1 for f in self._flows.values() if not f.completed),
                "completed_total": self.completed_total,
                "evicted": self.evicted,
                "max_flows": self.max_flows,
            }

    def export_ndjson(self) -> str:
        """Newline-delimited JSON: one flow object per line (offline
        analysis — stream, grep, jq)."""
        return "".join(
            json.dumps(flow.as_dict(), sort_keys=True) + "\n"
            for flow in self.flows()
        )

    def export_chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` format (load in chrome://tracing
        or Perfetto): one *process* track per cluster node, one *thread*
        lane per flow; hops are complete ("X") events on the sender's
        track spanning send→receive, linked across tracks by flow
        ("s"/"f") events keyed on the span id; sources, sinks and gated
        cuts are instant ("i") events.
        """
        flows = self.flows()
        nodes: list = []
        for flow in flows:
            for name in self._flow_node_names(flow):
                if name not in nodes:
                    nodes.append(name)
        pid_of = {name: index + 1 for index, name in enumerate(nodes)}
        timestamps = []
        for flow in flows:
            if flow.root.timestamp:
                timestamps.append(flow.root.timestamp)
            for hop in flow.hops:
                if hop.send_timestamp is not None:
                    timestamps.append(hop.send_timestamp)
                if hop.receive_timestamp is not None:
                    timestamps.append(hop.receive_timestamp)
            timestamps.extend(s.timestamp for s in flow.sinks if s.timestamp)
        base = min(timestamps) if timestamps else 0.0

        def us(timestamp: Optional[float]) -> float:
            if timestamp is None:
                return 0.0
            return round((timestamp - base) * 1e6, 3)

        events: list = []
        for name, pid in pid_of.items():
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for tid, flow in enumerate(flows, start=1):
            label = str(flow.tag_value)
            for name in self._flow_node_names(flow):
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid_of[name],
                        "tid": tid,
                        "args": {"name": f"flow {label}"},
                    }
                )
            if flow.root.node is not None:
                events.append(
                    {
                        "ph": "i",
                        "s": "p",
                        "name": f"source {flow.root.descriptor or label} "
                        f"[{flow.root.disposition}]",
                        "pid": pid_of[flow.root.node],
                        "tid": tid,
                        "ts": us(flow.root.timestamp),
                        "args": {"gid": flow.gid},
                    }
                )
            for hop in flow.hops:
                anchor = hop.sender if hop.sender is not None else hop.receiver
                if anchor is None:
                    continue
                pid = pid_of[anchor]
                start = (
                    hop.send_timestamp
                    if hop.send_timestamp is not None
                    else hop.receive_timestamp
                )
                duration = hop.latency or 0.0
                events.append(
                    {
                        "ph": "X",
                        "name": f"{hop.send_method or '?'} -> "
                        f"{hop.receive_method or '?'}",
                        "pid": pid,
                        "tid": tid,
                        "ts": us(start),
                        "dur": max(round(duration * 1e6, 3), 1.0),
                        "args": {
                            "span": hop.span,
                            "sent_bytes": hop.sent_bytes,
                            "received_bytes": hop.received_bytes,
                            "disposition": hop.disposition,
                        },
                    }
                )
                if hop.complete:
                    events.append(
                        {
                            "ph": "s",
                            "name": f"span {hop.span}",
                            "id": hop.span,
                            "pid": pid_of[hop.sender],
                            "tid": tid,
                            "ts": us(hop.send_timestamp),
                        }
                    )
                    events.append(
                        {
                            "ph": "f",
                            "bp": "e",
                            "name": f"span {hop.span}",
                            "id": hop.span,
                            "pid": pid_of[hop.receiver],
                            "tid": tid,
                            "ts": us(hop.receive_timestamp),
                        }
                    )
            for arrival in flow.sinks:
                events.append(
                    {
                        "ph": "i",
                        "s": "p",
                        "name": f"sink {arrival.descriptor}",
                        "pid": pid_of[arrival.node],
                        "tid": tid,
                        "ts": us(arrival.timestamp),
                    }
                )
            for cut in flow.gated:
                events.append(
                    {
                        "ph": "i",
                        "s": "p",
                        "name": f"gated {cut.method}",
                        "pid": pid_of[cut.node],
                        "tid": tid,
                        "ts": us(cut.timestamp),
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    @staticmethod
    def _flow_node_names(flow: FlowTree) -> list:
        names: list = []
        for name in (
            [flow.root.node]
            + [h.sender for h in flow.hops]
            + [h.receiver for h in flow.hops]
            + [s.node for s in flow.sinks]
            + [g.node for g in flow.gated]
        ):
            if name is not None and name not in names:
                names.append(name)
        return names

    # -- telemetry ---------------------------------------------------------- #

    def telemetry_samples(self) -> dict:
        """Snapshot fragment for the kernel registry (registered by
        ``Cluster.start`` when lineage is on)."""
        with self._lock:
            open_count = sum(1 for f in self._flows.values() if not f.completed)
            completed = self.completed_total
            evicted = self.evicted
            depth_sample = self._depth_hist.sample()
            hop_samples = [
                hist.sample({"site": site})
                for site, hist in sorted(self._hop_hists.items())
            ]
        return {
            "dista_lineage_flows_open": {
                "type": "gauge",
                "help": "Flows retained by the lineage store without a sink yet.",
                "samples": [{"labels": {}, "value": open_count}],
            },
            "dista_lineage_flows_completed_total": {
                "type": "counter",
                "help": "Flows whose tag reached a sink point.",
                "samples": [{"labels": {}, "value": completed}],
            },
            "dista_lineage_flows_evicted_total": {
                "type": "counter",
                "help": "Flows evicted after the store reached max_flows.",
                "samples": [{"labels": {}, "value": evicted}],
            },
            "dista_lineage_tree_depth": {
                "type": "histogram",
                "help": "Flow tree depth at completion (root + hops + sink).",
                "samples": [depth_sample],
            },
            "dista_lineage_hop_seconds": {
                "type": "histogram",
                "help": "Per-hop one-way latency by sending site.",
                "samples": hop_samples,
            },
        }


class LineageRecorder:
    """Per-node recorder: forwards source/sink/gated events to the store.

    One per attached node (built by the agent), stamped with the node
    name so cluster-side stitching never guesses origins.  Every hook is
    dispatched *behind* the zero-taint fast path and behind the caller's
    ``recorder.enabled`` check, so the disabled configuration
    (:data:`NULL_LINEAGE`) costs one attribute read on the hot path.
    """

    __slots__ = ("store", "node_name")

    enabled = True

    def __init__(self, store: LineageStore, node_name: str):
        self.store = store
        self.node_name = node_name

    def source_event(self, descriptor: str, tag, detail: str = "") -> None:
        self.store.record_source(self.node_name, descriptor, tag, detail)

    def sampled_out_event(self, descriptor: str) -> None:
        self.store.record_sampled_out(self.node_name, descriptor)

    def sink_event(self, descriptor: str, tags, detail: str = "") -> None:
        if tags:
            self.store.record_sink(self.node_name, descriptor, tags, detail)

    def gated_event(self, method: str, data) -> None:
        """A budget-gated send on this node.  Reached only when the
        payload actually carried labels (the gate strips them), so the
        overall-taint fold here never runs on the zero-taint path."""
        taint = data.overall_taint() if hasattr(data, "overall_taint") else None
        if taint is None or taint.is_empty:
            return
        self.store.record_gated(self.node_name, method, taint.tags)


class NullLineageRecorder:
    """The no-op recorder: full :class:`LineageRecorder` API parity,
    ``enabled`` False so hot paths skip event construction entirely."""

    __slots__ = ()

    enabled = False

    def source_event(self, descriptor: str, tag, detail: str = "") -> None:
        return None

    def sampled_out_event(self, descriptor: str) -> None:
        return None

    def sink_event(self, descriptor: str, tags, detail: str = "") -> None:
        return None

    def gated_event(self, method: str, data) -> None:
        return None


NULL_LINEAGE = NullLineageRecorder()
