"""Inter-node taint crossing trace.

DisTA is pitched for debugging and in-house analysis; knowing *that* a
taint reached a sink is often not enough — you want the path.  This
module records every tainted boundary crossing the wrappers perform
(send or receive, per JNI method) into a cluster-wide
:class:`CrossingTrace`, and renders per-tag timelines.

Enable per cluster::

    cluster = Cluster(Mode.DISTA, agent_options={"trace": CrossingTrace()})

The trace only records *tainted* crossings (untainted traffic would
swamp it), ordered by a global sequence number.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Crossing:
    """One tainted message crossing a node boundary."""

    sequence: int
    node: str
    direction: str  # "send" | "receive"
    method: str
    data_bytes: int
    tags: frozenset

    def describe(self) -> str:
        arrow = "->" if self.direction == "send" else "<-"
        tag_names = ",".join(sorted(str(t.tag) for t in self.tags))
        return (
            f"#{self.sequence:<4d} {self.node:12s} {arrow} {self.method:22s} "
            f"{self.data_bytes:6d}B  [{tag_names}]"
        )


class CrossingTrace:
    """Thread-safe recorder shared by every wrapper in a cluster."""

    def __init__(self, capacity: int = 10_000):
        self._capacity = capacity
        self._lock = threading.Lock()
        self._sequence = itertools.count(1)
        self.crossings: list[Crossing] = []

    def record(self, node: str, direction: str, method: str, data) -> None:
        taint = data.overall_taint() if hasattr(data, "overall_taint") else None
        if taint is None or taint.is_empty:
            return
        with self._lock:
            if len(self.crossings) >= self._capacity:
                return
            self.crossings.append(
                Crossing(
                    next(self._sequence),
                    node,
                    direction,
                    method,
                    len(data),
                    frozenset(taint.tags),
                )
            )

    # -- queries ---------------------------------------------------------- #

    def for_tag(self, tag_value) -> list[Crossing]:
        """Crossings carrying a tag with the given value, in order."""
        with self._lock:
            return [
                c for c in self.crossings if any(t.tag == tag_value for t in c.tags)
            ]

    def hops(self, tag_value) -> list[str]:
        """The node path a tag travelled, deduplicating repeats."""
        path: list[str] = []
        for crossing in self.for_tag(tag_value):
            if not path or path[-1] != crossing.node:
                path.append(crossing.node)
        return path

    def render(self, tag_value=None, title: str = "Taint crossings") -> str:
        crossings = self.for_tag(tag_value) if tag_value is not None else list(self.crossings)
        lines = [f"=== {title} ==="]
        lines.extend(c.describe() for c in crossings)
        lines.append(f"--- {len(crossings)} crossing(s) ---")
        return "\n".join(lines)


class NullTrace:
    """Default no-op trace (zero overhead when tracing is off)."""

    __slots__ = ()

    def record(self, node: str, direction: str, method: str, data) -> None:
        return None


NULL_TRACE = NullTrace()
