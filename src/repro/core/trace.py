"""Inter-node taint crossing trace with causal spans.

DisTA is pitched for debugging and in-house analysis; knowing *that* a
taint reached a sink is often not enough — you want the path.  This
module records every tainted boundary crossing the wrappers perform
(send or receive, per JNI method) into a cluster-wide
:class:`CrossingTrace`, and renders per-tag timelines.

Crossings are **causal spans**: a tainted send allocates a span id and
parks it (with its byte count) on the wire channel it wrote to — the
shared kernel pipe for TCP, the destination address for UDP.  The
receive that drains those bytes on the other node takes the same span
id, so one span = one message's journey across the boundary, with
monotonic timestamps on both ends.  Split reads decrement the pending
byte budget and keep the span until it is fully consumed; a receive
with no pending send (uninstrumented peer, coalesced wire traffic)
falls back to a fresh span rather than mis-attributing.

Enable per cluster::

    cluster = Cluster(Mode.DISTA, agent_options={"trace": CrossingTrace()})

The trace only records *tainted* crossings (untainted traffic would
swamp it), ordered by a global sequence number.  The buffer is a ring:
once ``capacity`` is reached each new crossing evicts the oldest, and
evictions are **counted, never silently lost** — see
:attr:`CrossingTrace.dropped` and :meth:`CrossingTrace.describe`.

Per-tag and per-span indexes are maintained on :meth:`record` (and
trimmed on ring eviction), so :meth:`for_tag`/:meth:`for_span` — the
primitives the timeline render and the lineage store stitch with — cost
O(result), not O(trace).

A :class:`~repro.obs.lineage.LineageStore` attached via
:meth:`attach_lineage` receives every recorded crossing (independent of
ring eviction), which is how flow trees acquire their hop edges without
any new wire bytes: lineage context rides the existing span ids.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

#: Per-channel bound on unmatched pending sends (lost datagrams,
#: uninstrumented receivers); beyond it the oldest correlation is
#: forgotten so the trace cannot leak on one-way traffic.
MAX_PENDING_PER_CHANNEL = 1024


@dataclass(frozen=True)
class Crossing:
    """One tainted message crossing a node boundary."""

    sequence: int
    node: str
    direction: str  # "send" | "receive"
    method: str
    data_bytes: int
    tags: frozenset
    #: Causal span id shared by a send and the receive(s) draining it.
    span: int = 0
    #: ``time.monotonic()`` at record time (orders both ends of a span).
    timestamp: float = 0.0

    def describe(self) -> str:
        arrow = "->" if self.direction == "send" else "<-"
        tag_names = ",".join(sorted(str(t.tag) for t in self.tags))
        return (
            f"#{self.sequence:<4d} s{self.span:<4d} {self.node:12s} {arrow} "
            f"{self.method:22s} {self.data_bytes:6d}B  [{tag_names}]"
        )


class CrossingTrace:
    """Thread-safe recorder shared by every wrapper in a cluster."""

    def __init__(self, capacity: int = 10_000):
        self._capacity = capacity
        self._lock = threading.Lock()
        self._sequence = itertools.count(1)
        self._spans = itertools.count(1)
        #: channel key → FIFO of ``[span_id, bytes_remaining]`` for
        #: sends whose bytes have not been received yet.
        self._pending: dict = {}
        #: Retained crossings, oldest first (ring: evicts at capacity).
        self._ring: deque = deque()
        #: tag value → its crossings (same order as the ring); one entry
        #: per *distinct* tag value per crossing, popped front-first on
        #: eviction so the index mirrors the ring exactly.
        self._by_tag: dict = {}
        #: span id → its crossings (both ends, sequence order).
        self._by_span: dict = {}
        #: Optional LineageStore fed every recorded crossing.
        self._lineage = None
        #: Crossings evicted after ``capacity`` was reached.  Span
        #: bookkeeping continues even while dropping, so correlations
        #: stay correct for whatever the buffer does retain.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def crossings(self) -> list:
        """Retained crossings, oldest first (a copy)."""
        with self._lock:
            return list(self._ring)

    def attach_lineage(self, store) -> None:
        """Feed every recorded crossing to ``store.record_crossing``.

        Called by ``Cluster.start`` when lineage is enabled; the store
        keeps its own (bounded, eviction-counted) flow state, so ring
        eviction here never loses a hop edge there.
        """
        with self._lock:
            self._lineage = store

    def record(
        self, node: str, direction: str, method: str, data, channel=None
    ) -> None:
        tag_set = self._collect_tags(data)
        if tag_set is None:
            return
        data_bytes = len(data)
        with self._lock:
            if direction == "send":
                span = next(self._spans)
                if channel is not None:
                    queue = self._pending.setdefault(channel, deque())
                    queue.append([span, data_bytes])
                    if len(queue) > MAX_PENDING_PER_CHANNEL:
                        queue.popleft()
            else:
                span = self._take_receive_span(channel, data_bytes)
            crossing = Crossing(
                next(self._sequence),
                node,
                direction,
                method,
                data_bytes,
                tag_set,
                span,
                time.monotonic(),
            )
            self._ring.append(crossing)
            self._index(crossing)
            if len(self._ring) > self._capacity:
                self._unindex(self._ring.popleft())
                self.dropped += 1
            # Inside the lock on purpose: stitching must observe a
            # span's send before its receive, and the ring lock is the
            # only thing ordering the two ends across node threads.
            if self._lineage is not None:
                self._lineage.record_crossing(crossing)

    @staticmethod
    def _collect_tags(data) -> Optional[frozenset]:
        """Distinct tags on ``data``, or ``None`` when untainted.

        Run-labelled values skip the ``overall_taint`` union fold: tag
        sets are precomputed per interned taint node, so walking the
        distinct run labels is O(runs) set updates, while the fold would
        build (and intern) a merged taint tree only to read its tag set
        once — the dominant cost of recording multi-source payloads.
        """
        labels = getattr(data, "labels", None)
        if labels is not None and hasattr(labels, "unique_labels"):
            tags: set = set()
            for label in labels.unique_labels():
                if label is not None:
                    tags.update(label.tags)
            return frozenset(tags) if tags else None
        taint = data.overall_taint() if hasattr(data, "overall_taint") else None
        if taint is None or taint.is_empty:
            return None
        return frozenset(taint.tags)

    def _index(self, crossing: Crossing) -> None:
        for value in {t.tag for t in crossing.tags}:
            self._by_tag.setdefault(value, deque()).append(crossing)
        self._by_span.setdefault(crossing.span, deque()).append(crossing)

    def _unindex(self, crossing: Crossing) -> None:
        """Drop the evicted (oldest) crossing from both indexes.  Ring
        and index share append order, so it is always at the front."""
        for value in {t.tag for t in crossing.tags}:
            queue = self._by_tag.get(value)
            if queue:
                queue.popleft()
                if not queue:
                    del self._by_tag[value]
        queue = self._by_span.get(crossing.span)
        if queue:
            queue.popleft()
            if not queue:
                del self._by_span[crossing.span]

    def _take_receive_span(self, channel, data_bytes: int) -> int:
        """Correlate a receive with the oldest pending send on its
        channel, consuming its byte budget (split reads keep the span
        alive until the sent bytes are drained)."""
        queue = self._pending.get(channel) if channel is not None else None
        if not queue:
            return next(self._spans)
        head = queue[0]
        head[1] -= data_bytes
        if head[1] <= 0:
            queue.popleft()
        return head[0]

    # -- queries ---------------------------------------------------------- #

    def for_tag(self, tag_value) -> list:
        """Crossings carrying a tag with the given value, in order."""
        with self._lock:
            return list(self._by_tag.get(tag_value, ()))

    def for_span(self, span: int) -> list:
        """Both ends of one causal span, in sequence order."""
        with self._lock:
            return list(self._by_span.get(span, ()))

    def span_pairs(self, tag_value=None) -> list:
        """Correlated (send, receive) pairs — the end-to-end hops.

        A span whose receive was split across several reads contributes
        one pair per receive (same send side)."""
        crossings = (
            self.for_tag(tag_value) if tag_value is not None else self.crossings
        )
        sends: dict[int, Crossing] = {}
        pairs = []
        for crossing in crossings:
            if crossing.direction == "send":
                sends.setdefault(crossing.span, crossing)
            else:
                send = sends.get(crossing.span)
                if send is not None:
                    pairs.append((send, crossing))
        return pairs

    def hops(self, tag_value) -> list:
        """The node path a tag travelled, deduplicating repeats."""
        path: list[str] = []
        for crossing in self.for_tag(tag_value):
            if not path or path[-1] != crossing.node:
                path.append(crossing.node)
        return path

    def describe(self) -> str:
        """One-line summary, including the (never silent) drop count."""
        with self._lock:
            recorded = len(self._ring)
            dropped = self.dropped
        return (
            f"CrossingTrace: {recorded} crossing(s) recorded, "
            f"{dropped} dropped (capacity {self._capacity})"
        )

    def render(self, tag_value=None, title: str = "Taint crossings") -> str:
        crossings = self.for_tag(tag_value) if tag_value is not None else self.crossings
        lines = [f"=== {title} ==="]
        lines.extend(c.describe() for c in crossings)
        lines.append(f"--- {len(crossings)} crossing(s) ---")
        if self.dropped:
            lines.append(
                f"!!! incomplete: {self.dropped} crossing(s) dropped at "
                f"capacity {self._capacity}"
            )
        return "\n".join(lines)

    # -- telemetry ---------------------------------------------------------- #

    def telemetry_samples(self) -> dict:
        """Snapshot fragment for a :class:`~repro.obs.registry.MetricsRegistry`
        collector (registered by ``Cluster.start`` when tracing is on)."""
        with self._lock:
            recorded = len(self._ring)
            dropped = self.dropped
        return {
            "dista_trace_crossings": {
                "type": "gauge",
                "help": "Tainted boundary crossings retained by the trace.",
                "samples": [{"labels": {}, "value": recorded}],
            },
            "dista_trace_dropped_total": {
                "type": "counter",
                "help": "Crossings dropped after the trace reached capacity.",
                "samples": [{"labels": {}, "value": dropped}],
            },
        }


class NullTrace:
    """Default no-op trace (zero overhead when tracing is off).

    Full API parity with :class:`CrossingTrace` — every public method
    and property exists with the same signature and returns the empty
    answer — so code written against a trace never needs an
    ``isinstance`` check to stay a strict no-op when tracing is off.
    """

    __slots__ = ()

    #: Parity with ``CrossingTrace.dropped`` (nothing is ever recorded,
    #: so nothing is ever dropped).
    dropped = 0

    @property
    def capacity(self) -> int:
        return 0

    @property
    def crossings(self) -> list:
        return []

    def attach_lineage(self, store) -> None:
        return None

    def record(
        self, node: str, direction: str, method: str, data, channel=None
    ) -> None:
        return None

    def for_tag(self, tag_value) -> list:
        return []

    def for_span(self, span: int) -> list:
        return []

    def span_pairs(self, tag_value=None) -> list:
        return []

    def hops(self, tag_value) -> list:
        return []

    def describe(self) -> str:
        return "CrossingTrace: disabled (NullTrace)"

    def render(self, tag_value=None, title: str = "Taint crossings") -> str:
        return f"=== {title} ===\n--- 0 crossing(s) ---"

    def telemetry_samples(self) -> dict:
        return {}


NULL_TRACE = NullTrace()
