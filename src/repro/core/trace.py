"""Inter-node taint crossing trace with causal spans.

DisTA is pitched for debugging and in-house analysis; knowing *that* a
taint reached a sink is often not enough — you want the path.  This
module records every tainted boundary crossing the wrappers perform
(send or receive, per JNI method) into a cluster-wide
:class:`CrossingTrace`, and renders per-tag timelines.

Crossings are **causal spans**: a tainted send allocates a span id and
parks it (with its byte count) on the wire channel it wrote to — the
shared kernel pipe for TCP, the destination address for UDP.  The
receive that drains those bytes on the other node takes the same span
id, so one span = one message's journey across the boundary, with
monotonic timestamps on both ends.  Split reads decrement the pending
byte budget and keep the span until it is fully consumed; a receive
with no pending send (uninstrumented peer, coalesced wire traffic)
falls back to a fresh span rather than mis-attributing.

Enable per cluster::

    cluster = Cluster(Mode.DISTA, agent_options={"trace": CrossingTrace()})

The trace only records *tainted* crossings (untainted traffic would
swamp it), ordered by a global sequence number.  Once ``capacity`` is
reached further crossings are **counted, never silently lost**: see
:attr:`CrossingTrace.dropped` and :meth:`CrossingTrace.describe`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

#: Per-channel bound on unmatched pending sends (lost datagrams,
#: uninstrumented receivers); beyond it the oldest correlation is
#: forgotten so the trace cannot leak on one-way traffic.
MAX_PENDING_PER_CHANNEL = 1024


@dataclass(frozen=True)
class Crossing:
    """One tainted message crossing a node boundary."""

    sequence: int
    node: str
    direction: str  # "send" | "receive"
    method: str
    data_bytes: int
    tags: frozenset
    #: Causal span id shared by a send and the receive(s) draining it.
    span: int = 0
    #: ``time.monotonic()`` at record time (orders both ends of a span).
    timestamp: float = 0.0

    def describe(self) -> str:
        arrow = "->" if self.direction == "send" else "<-"
        tag_names = ",".join(sorted(str(t.tag) for t in self.tags))
        return (
            f"#{self.sequence:<4d} s{self.span:<4d} {self.node:12s} {arrow} "
            f"{self.method:22s} {self.data_bytes:6d}B  [{tag_names}]"
        )


class CrossingTrace:
    """Thread-safe recorder shared by every wrapper in a cluster."""

    def __init__(self, capacity: int = 10_000):
        self._capacity = capacity
        self._lock = threading.Lock()
        self._sequence = itertools.count(1)
        self._spans = itertools.count(1)
        #: channel key → FIFO of ``[span_id, bytes_remaining]`` for
        #: sends whose bytes have not been received yet.
        self._pending: dict = {}
        self.crossings: list[Crossing] = []
        #: Crossings discarded after ``capacity`` was reached.  Span
        #: bookkeeping continues even while dropping, so correlations
        #: stay correct for whatever the buffer does retain.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(
        self, node: str, direction: str, method: str, data, channel=None
    ) -> None:
        taint = data.overall_taint() if hasattr(data, "overall_taint") else None
        if taint is None or taint.is_empty:
            return
        data_bytes = len(data)
        with self._lock:
            if direction == "send":
                span = next(self._spans)
                if channel is not None:
                    queue = self._pending.setdefault(channel, deque())
                    queue.append([span, data_bytes])
                    if len(queue) > MAX_PENDING_PER_CHANNEL:
                        queue.popleft()
            else:
                span = self._take_receive_span(channel, data_bytes)
            if len(self.crossings) >= self._capacity:
                self.dropped += 1
                return
            self.crossings.append(
                Crossing(
                    next(self._sequence),
                    node,
                    direction,
                    method,
                    data_bytes,
                    frozenset(taint.tags),
                    span,
                    time.monotonic(),
                )
            )

    def _take_receive_span(self, channel, data_bytes: int) -> int:
        """Correlate a receive with the oldest pending send on its
        channel, consuming its byte budget (split reads keep the span
        alive until the sent bytes are drained)."""
        queue = self._pending.get(channel) if channel is not None else None
        if not queue:
            return next(self._spans)
        head = queue[0]
        head[1] -= data_bytes
        if head[1] <= 0:
            queue.popleft()
        return head[0]

    # -- queries ---------------------------------------------------------- #

    def for_tag(self, tag_value) -> list[Crossing]:
        """Crossings carrying a tag with the given value, in order."""
        with self._lock:
            return [
                c for c in self.crossings if any(t.tag == tag_value for t in c.tags)
            ]

    def for_span(self, span: int) -> list[Crossing]:
        """Both ends of one causal span, in sequence order."""
        with self._lock:
            return [c for c in self.crossings if c.span == span]

    def span_pairs(self, tag_value=None) -> list[tuple[Crossing, Crossing]]:
        """Correlated (send, receive) pairs — the end-to-end hops.

        A span whose receive was split across several reads contributes
        one pair per receive (same send side)."""
        crossings = (
            self.for_tag(tag_value) if tag_value is not None else list(self.crossings)
        )
        sends: dict[int, Crossing] = {}
        pairs = []
        for crossing in crossings:
            if crossing.direction == "send":
                sends.setdefault(crossing.span, crossing)
            else:
                send = sends.get(crossing.span)
                if send is not None:
                    pairs.append((send, crossing))
        return pairs

    def hops(self, tag_value) -> list[str]:
        """The node path a tag travelled, deduplicating repeats."""
        path: list[str] = []
        for crossing in self.for_tag(tag_value):
            if not path or path[-1] != crossing.node:
                path.append(crossing.node)
        return path

    def describe(self) -> str:
        """One-line summary, including the (never silent) drop count."""
        with self._lock:
            recorded = len(self.crossings)
            dropped = self.dropped
        return (
            f"CrossingTrace: {recorded} crossing(s) recorded, "
            f"{dropped} dropped (capacity {self._capacity})"
        )

    def render(self, tag_value=None, title: str = "Taint crossings") -> str:
        crossings = self.for_tag(tag_value) if tag_value is not None else list(self.crossings)
        lines = [f"=== {title} ==="]
        lines.extend(c.describe() for c in crossings)
        lines.append(f"--- {len(crossings)} crossing(s) ---")
        if self.dropped:
            lines.append(
                f"!!! incomplete: {self.dropped} crossing(s) dropped at "
                f"capacity {self._capacity}"
            )
        return "\n".join(lines)

    # -- telemetry ---------------------------------------------------------- #

    def telemetry_samples(self) -> dict:
        """Snapshot fragment for a :class:`~repro.obs.registry.MetricsRegistry`
        collector (registered by ``Cluster.start`` when tracing is on)."""
        with self._lock:
            recorded = len(self.crossings)
            dropped = self.dropped
        return {
            "dista_trace_crossings": {
                "type": "gauge",
                "help": "Tainted boundary crossings retained by the trace.",
                "samples": [{"labels": {}, "value": recorded}],
            },
            "dista_trace_dropped_total": {
                "type": "counter",
                "help": "Crossings dropped after the trace reached capacity.",
                "samples": [{"labels": {}, "value": dropped}],
            },
        }


class NullTrace:
    """Default no-op trace (zero overhead when tracing is off)."""

    __slots__ = ()

    def record(
        self, node: str, direction: str, method: str, data, channel=None
    ) -> None:
        return None


NULL_TRACE = NullTrace()
