"""User extensions for system-specific native communication (paper §VI).

    "distributed system developers can design their own native
    communication libraries and corresponding JNI methods … To support
    these methods, users can follow the three instrumentation ways and
    extend our instrumentation interfaces to instrument them."

This module is that interface.  A custom native method registers itself
on the per-JVM :class:`~repro.jre.jni.JniTable` (so it exists whether or
not DisTA is attached), and an :class:`ExtensionPoint` tells the agent
which of the three wrapper types to apply:

* ``STREAM`` — the method moves a byte stream over a TCP-like fd
  (wrapped like ``socketRead0``/``socketWrite0``);
* ``PACKET`` — the method moves whole datagrams (wrapped like
  ``send``/``receive0``);
* custom — supply your own wrapper factory, receiving the
  :class:`~repro.core.wrappers.DisTARuntime`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import wire
from repro.core.wrappers import DisTARuntime, _check_envelope_fits
from repro.errors import InstrumentationError
from repro.taint.values import TByteArray, TBytes


class WrapperType(enum.Enum):
    """Which of the paper's three instrumentation ways to apply."""

    STREAM = 1
    PACKET = 2
    CUSTOM = 3


@dataclass(frozen=True)
class ExtensionPoint:
    """One user-registered native method and how to instrument it.

    ``direction`` is ``"send"`` or ``"receive"``; for ``CUSTOM`` wrapper
    types, ``factory(runtime)`` must return the usual
    ``wrapper(original) -> patched`` callable.
    """

    name: str
    wrapper_type: WrapperType
    direction: str = "send"
    factory: Optional[Callable[[DisTARuntime], Callable]] = None

    def build(self, runtime: DisTARuntime) -> Callable:
        if self.wrapper_type is WrapperType.CUSTOM:
            if self.factory is None:
                raise InstrumentationError(
                    f"extension {self.name}: CUSTOM type requires a factory"
                )
            return self.factory(runtime)
        if self.wrapper_type is WrapperType.STREAM:
            return (
                _make_stream_send(runtime)
                if self.direction == "send"
                else _make_stream_receive(runtime)
            )
        return (
            _make_packet_send(runtime)
            if self.direction == "send"
            else _make_packet_receive(runtime)
        )


def _make_stream_send(runtime: DisTARuntime):
    """Type-1 sender: data+taints → cell stream → original method."""

    def wrapper(original):
        def patched(fd, data: TBytes, *args, **kwargs):
            cells = wire.encode_cells(
                runtime.outgoing(data), runtime.client.gid_for, runtime.client.gids_for
            )
            return original(fd, TBytes.raw(cells), *args, **kwargs)

        return patched

    return wrapper


def _make_stream_receive(runtime: DisTARuntime):
    """Type-1 receiver: original → enlarged read → split data/taints.

    The original must follow the ``socketRead0`` contract:
    ``original(fd, buf, offset, length) -> count | EOF``.
    """
    from repro.jre.jni import EOF

    def wrapper(original):
        def patched(fd, buf: TByteArray, offset: int, length: int, *args, **kwargs):
            length = min(length, len(buf) - offset)
            decoder = runtime.decoder_for(fd)
            staging = TByteArray.raw(wire.wire_length(length))
            while True:
                count = original(fd, staging, 0, len(staging), *args, **kwargs)
                if count == EOF:
                    decoder.check_clean_eof()
                    return EOF
                decoded = decoder.feed(
                    staging.read(0, count).data,
                    runtime.client.taint_for,
                    runtime.client.taints_for,
                )
                if decoded:
                    buf.write(offset, decoded)
                    return len(decoded)

        return patched

    return wrapper


def _make_packet_send(runtime: DisTARuntime):
    """Type-2 sender: ``original(fd, data, destination)`` with whole
    datagrams; the payload is enveloped."""

    def wrapper(original):
        def patched(fd, data: TBytes, destination, *args, **kwargs):
            payload = runtime.outgoing(data)
            _check_envelope_fits(len(payload))
            envelope = wire.encode_packet(
                payload, runtime.client.gid_for, runtime.client.gids_for
            )
            return original(fd, TBytes.raw(envelope), destination, *args, **kwargs)

        return patched

    return wrapper


def _make_packet_receive(runtime: DisTARuntime):
    """Type-2 receiver: ``original(fd) -> (data, source)``."""

    def wrapper(original):
        def patched(fd, *args, **kwargs):
            data, source = original(fd, *args, **kwargs)
            raw = data if isinstance(data, TBytes) else TBytes.raw(bytes(data))
            if wire.is_enveloped(raw.data):
                return (
                    wire.decode_packet(
                        raw.data, runtime.client.taint_for, runtime.client.taints_for
                    ),
                    source,
                )
            return TBytes(raw.data), source

        return patched

    return wrapper
