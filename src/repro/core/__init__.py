"""DisTA core: the paper's contribution.

Inter-node, byte-granular dynamic taint tracking for (simulated)
Java-based distributed systems: JNI-level wrappers (§III-C), the
Global-ID wire formats (§III-D), the Taint Map service (Fig. 9), the
attachable agent (§V-E), and user-facing configuration.
"""

from repro.core.agent import (
    INSTRUMENTED_METHODS,
    DisTAAgent,
    InstrumentedMethod,
    instrumented_method_count,
)
from repro.core.extensions import ExtensionPoint, WrapperType
from repro.core.ha import (
    FailoverTaintMapClient,
    ReplicatedTaintMapServer,
    StandbyTaintMapServer,
)
from repro.core.trace import Crossing, CrossingTrace
from repro.core.config import AgentOptions, TaintSpec
from repro.core.launch import LaunchScript, all_launch_scripts, average_changed_loc
from repro.core.taintmap import (
    GID_SHARD_BITS,
    MAX_SHARDS,
    ShardedTaintMapService,
    ShardRouter,
    TaintMapClient,
    TaintMapServer,
    TaintMapStats,
    deserialize_tags,
    gid_shard,
    make_gid,
    serialize_tags,
)
from repro.core.wire import (
    CELL_WIDTH,
    GID_WIDTH,
    CellDecoder,
    decode_packet,
    encode_cells,
    encode_packet,
    envelope_length,
    is_enveloped,
    max_data_for_wire,
    wire_length,
)
from repro.core.wrappers import DisTARuntime

__all__ = [
    "AgentOptions",
    "Crossing",
    "CrossingTrace",
    "ExtensionPoint",
    "FailoverTaintMapClient",
    "ReplicatedTaintMapServer",
    "StandbyTaintMapServer",
    "WrapperType",
    "CELL_WIDTH",
    "CellDecoder",
    "DisTAAgent",
    "DisTARuntime",
    "GID_SHARD_BITS",
    "GID_WIDTH",
    "MAX_SHARDS",
    "ShardRouter",
    "ShardedTaintMapService",
    "gid_shard",
    "make_gid",
    "INSTRUMENTED_METHODS",
    "InstrumentedMethod",
    "LaunchScript",
    "TaintMapClient",
    "TaintMapServer",
    "TaintMapStats",
    "TaintSpec",
    "all_launch_scripts",
    "average_changed_loc",
    "decode_packet",
    "deserialize_tags",
    "encode_cells",
    "encode_packet",
    "envelope_length",
    "instrumented_method_count",
    "is_enveloped",
    "max_data_for_wire",
    "serialize_tags",
    "wire_length",
]
