"""Elastic Taint Map: online shard scale-out with live migration.

The sharded Taint Map (``ShardedTaintMapService``) fixes its shard
count at deployment; this module grows it **while serving traffic**.
The design leans on two invariants the rest of the stack already
guarantees:

* **GIDs are self-routing and never rewritten.**  A Global ID carries
  its allocating shard in its high ``GID_SHARD_BITS`` bits, and old
  shards never delete state — so every GID ever put on the wire keeps
  resolving at its home shard through any number of scale-outs.  What
  migrates is only the *reverse* direction (taint key → GID dedup
  state), copied to the key's new owner so re-registrations there
  return the **original** GID instead of allocating a duplicate.

* **Registrations are idempotent and ring-checked.**  Every shard
  judges each registration under its current ring and answers
  ``STATUS_STALE_RING`` (+ the encoded new ring) for keys it no longer
  owns, so a client racing the epoch flip re-routes instead of
  poisoning the map.  Wire frames stay byte-identical throughout — the
  control plane runs on new opcodes, the data plane is untouched.

The migration itself is a **two-pass copy**:

1. *Bulk pass* (old ring still live): each old shard's entries that
   change owner under the new ring stream to their new owners in
   ``OP_HANDOFF_CHUNK`` frames.  Registrations keep landing on the old
   shards; nothing blocks.
2. *Epoch flip*: every old shard atomically adopts the new ring
   (``OP_RING_UPDATE`` handled under the shard's serial service lock).
   From this instant old shards stale-ring re-route new keys.
3. *Delta pass*: entries the old shards allocated while the bulk pass
   ran (selected by a per-shard sequence watermark) stream the same
   way.  A key registered on its *new* owner mid-race keeps whichever
   GID won — adoption uses setdefault semantics, and the loser GID
   still resolves at its allocating shard, so nothing dangles.

Zero failed lookups, zero renumbered GIDs, no write pause.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional, Sequence

from repro.core.taintmap import (
    OP_HANDOFF_BEGIN,
    OP_HANDOFF_CHUNK,
    OP_HANDOFF_END,
    OP_RING_UPDATE,
    STATUS_OK,
    TRANSPORT_ERRORS,
    ShardedTaintMapService,
    ShardRing,
    TaintMapServer,
    _pack_handoff_chunk,
    _recv_exact,
    _send_frame,
)
from repro.errors import TaintMapError
from repro.runtime.kernel import Address, TcpEndpoint

#: Entries per ``OP_HANDOFF_CHUNK`` frame.  Small enough that a chunk
#: never starves the shard's serial service lock for long (registrations
#: interleave between chunks), large enough to amortize the frame cost.
HANDOFF_CHUNK_ENTRIES = 512


class _ControlConnection:
    """One blocking control-plane connection to a shard (sync framing)."""

    def __init__(self, kernel, source_ip: str, address: Address):
        self._endpoint: TcpEndpoint = kernel.connect(source_ip, address)

    def request(self, op: int, payload: bytes) -> tuple[int, bytes]:
        _send_frame(self._endpoint, bytes([op]), payload)
        status = _recv_exact(self._endpoint, 1)[0]
        (length,) = struct.unpack(">I", _recv_exact(self._endpoint, 4))
        response = _recv_exact(self._endpoint, length) if length else b""
        return status, response

    def close(self) -> None:
        try:
            self._endpoint.close()
        except Exception:
            pass


class RingCoordinator:
    """Drives one scale-out of a :class:`ShardedTaintMapService`.

    The coordinator is deliberately *outside* the data path: it talks to
    shards over the same wire protocol clients use (new control opcodes)
    so the choreography works identically when shards live on other
    machines.  ``standbys`` optionally maps a shard index to replica
    addresses — handoff delivery fails over to them, so a mid-handoff
    primary kill does not abort the migration (chunk adoption is
    idempotent, making redelivery safe).
    """

    def __init__(
        self,
        service: ShardedTaintMapService,
        standbys: Optional[dict[int, Sequence[Address]]] = None,
    ):
        self.service = service
        self._standbys = {
            index: [tuple(addr) for addr in addresses]
            for index, addresses in (standbys or {}).items()
        }
        #: Migration telemetry for benchmarks/tests.
        self.handoff_entries_sent = 0
        self.handoff_chunks_sent = 0
        self.drain_entries_sent = 0
        #: In-flight migration descriptor, for :meth:`resume` after a
        #: mid-migration crash.  Cleared when a migration completes.
        self._resume_state: Optional[tuple] = None

    # -- delivery --------------------------------------------------------- #

    def _replicas_for(self, ring: ShardRing, shard: int) -> list[Address]:
        return [ring.addresses[shard]] + list(self._standbys.get(shard, []))

    def _deliver(
        self,
        ring: ShardRing,
        shard: int,
        frames: Sequence[tuple[int, bytes]],
        addresses: Optional[Sequence[Address]] = None,
    ) -> None:
        """Send a frame sequence to ``shard``, failing over replica by
        replica.  On failover the whole sequence replays from the start
        — BEGIN and CHUNK handling are idempotent by construction.
        ``addresses`` overrides the ring-derived replica list — needed
        to reach a *draining* shard, whose slot in the successor ring
        already advertises its forwarding address."""
        last_error: Optional[Exception] = None
        kernel = self.service._kernel
        if addresses is None:
            addresses = self._replicas_for(ring, shard)
        for address in addresses:
            connection = None
            try:
                connection = _ControlConnection(kernel, self.service.ip, address)
                for op, payload in frames:
                    status, _ = connection.request(op, payload)
                    if status != STATUS_OK:
                        raise TaintMapError(
                            f"shard {shard} rejected control op {op} "
                            f"(status {status})"
                        )
                return
            except TRANSPORT_ERRORS as exc:
                last_error = exc
                continue
            finally:
                if connection is not None:
                    connection.close()
        raise TaintMapError(
            f"handoff delivery to shard {shard} failed on every replica: "
            f"{last_error}"
        )

    def _stream_handoff(
        self, ring: ShardRing, plan: dict[int, list[tuple[int, bytes]]]
    ) -> None:
        """One handoff session per target shard: BEGIN, chunked entries,
        END — delivered with replica failover."""
        epoch_payload = struct.pack(">I", ring.epoch)
        for target, entries in plan.items():
            frames: list[tuple[int, bytes]] = [(OP_HANDOFF_BEGIN, epoch_payload)]
            for start in range(0, len(entries), HANDOFF_CHUNK_ENTRIES):
                chunk = entries[start : start + HANDOFF_CHUNK_ENTRIES]
                frames.append((OP_HANDOFF_CHUNK, _pack_handoff_chunk(chunk)))
                self.handoff_chunks_sent += 1
            frames.append((OP_HANDOFF_END, epoch_payload))
            self._deliver(ring, target, frames)
            self.handoff_entries_sent += len(entries)

    # -- the scale-out ----------------------------------------------------- #

    def scale_to(
        self,
        new_shard_count: int,
        server_factory: Optional[Callable[..., TaintMapServer]] = None,
    ) -> ShardRing:
        """Grow the service to ``new_shard_count`` shards, live.

        Returns the new ring (epoch bumped by one).  Existing clients
        learn it lazily through ``STATUS_STALE_RING`` replies; callers
        that can push (``Cluster.scale_taint_map``) should hand the
        returned ring to every client's ``adopt_ring`` to skip the
        one-retry discovery hop.
        """
        service = self.service
        old_servers = list(service.servers)
        old_ring = service.ring
        if new_shard_count <= len(old_servers):
            raise TaintMapError(
                f"scale-out target {new_shard_count} is not larger than the "
                f"current {len(old_servers)} shard(s)"
            )
        new_ring = old_ring.grow(
            [
                (service.ip, service.base_port + index)
                for index in range(len(old_servers), new_shard_count)
            ]
        )

        # New shards boot directly on the successor ring and start
        # serving immediately — any registration reaching them early is
        # judged under the new ring, which is exactly right.
        service.add_shards(new_ring, server_factory=server_factory)

        self._resume_state = ("grow", new_ring, len(old_servers))
        self._run_grow(new_ring, len(old_servers))
        self._resume_state = None
        return new_ring

    def _run_grow(self, new_ring: ShardRing, old_count: int) -> None:
        """The grow migration's three passes.  Every pass is idempotent
        (adoption is setdefault, ring flips are monotone), so re-running
        after a mid-migration crash — via :meth:`resume` — is safe."""
        service = self.service
        old_servers = service.servers[:old_count]

        # Bulk pass: copy every entry whose owner changes, while the old
        # shards keep serving (and allocating) under the old ring.
        watermarks = [server.next_seq for server in old_servers]
        for server, watermark in zip(old_servers, watermarks):
            self._stream_handoff(
                new_ring, server.handoff_plan(new_ring, max_seq=watermark)
            )

        # Epoch flip: each old shard atomically adopts the new ring (its
        # serial request handling makes the flip a clean cut between two
        # registrations).  From here, stale-routed keys bounce with the
        # new ring attached.
        ring_payload = new_ring.encode()
        for index in range(old_count):
            self._deliver(new_ring, index, [(OP_RING_UPDATE, ring_payload)])

        # Delta pass: whatever the old shards allocated during the bulk
        # copy (sequence numbers at/after the watermark) migrates the
        # same way.  Post-flip, old shards allocate nothing new for
        # moved keys, so this drains to empty — no third pass needed.
        for server, watermark in zip(old_servers, watermarks):
            self._stream_handoff(
                new_ring, server.handoff_plan(new_ring, min_seq=watermark)
            )

        service.adopt_ring(new_ring)

    # -- the scale-in ------------------------------------------------------ #

    def drain(self, shard_index: int, forward: Optional[int] = None) -> ShardRing:
        """Retire shard ``shard_index``, live.

        The drained shard's entire resolvable state (own allocations
        *and* adopted foreign entries) streams to ``forward`` — the
        surviving shard whose address takes over the retired slot — so
        every GID carrying the drained shard's bits keeps resolving via
        the slot's forwarding address, forever.  Its key-dedup state
        re-homes to the successor ring's owners; and because the epoch
        bump re-salts every vnode, the surviving shards re-home their
        moved keys too, exactly as in a scale-out.  Returns the
        successor ring (``shard_index`` retired, epoch + 1).
        """
        service = self.service
        old_ring = service.ring
        new_ring = old_ring.drain(shard_index, forward)
        if forward is None:
            forward = next(
                index for index in old_ring.active_shards if index != shard_index
            )
        drained_address = old_ring.addresses[shard_index]
        self._resume_state = (
            "drain", new_ring, shard_index, forward, drained_address,
        )
        self._run_drain(new_ring, shard_index, forward, drained_address)
        self._resume_state = None
        return new_ring

    def _run_drain(
        self,
        new_ring: ShardRing,
        shard_index: int,
        forward: int,
        drained_address: Address,
    ) -> None:
        """The drain migration's passes (idempotent, resume-safe)."""
        service = self.service
        drained = service.servers[shard_index]
        survivors = new_ring.active_shards
        survivor_servers = [service.servers[index] for index in survivors]

        # Bulk pass: the drained shard pushes everything it can resolve
        # (GIDs to the forward shard, key dedup to the new owners)...
        drained_watermark = drained.next_seq
        survivor_watermarks = [server.next_seq for server in survivor_servers]
        plan = drained.drain_plan(new_ring, forward, max_seq=drained_watermark)
        sent = sum(len(entries) for entries in plan.values())
        self._stream_handoff(new_ring, plan)
        self.drain_entries_sent += sent
        if sent:
            drained.stats.bump("drain_entries", sent)
        # ...and every survivor re-homes the keys the re-salted ring
        # moved between them.
        for server, watermark in zip(survivor_servers, survivor_watermarks):
            self._stream_handoff(
                new_ring, server.handoff_plan(new_ring, max_seq=watermark)
            )

        # Epoch flip: survivors first, then the draining shard — reached
        # at its *old* address, since its slot in the successor ring
        # already advertises the forwarding address.  From its flip on,
        # the drained shard bounces every registration (retired shards
        # own nothing) while still answering lookups.
        ring_payload = new_ring.encode()
        for index in survivors:
            self._deliver(new_ring, index, [(OP_RING_UPDATE, ring_payload)])
        self._deliver(
            new_ring,
            shard_index,
            [(OP_RING_UPDATE, ring_payload)],
            addresses=[drained_address]
            + list(self._standbys.get(shard_index, [])),
        )

        # Delta passes: allocations that raced the bulk copy.
        plan = drained.drain_plan(
            new_ring, forward, min_seq=drained_watermark
        )
        sent = sum(len(entries) for entries in plan.values())
        self._stream_handoff(new_ring, plan)
        self.drain_entries_sent += sent
        if sent:
            drained.stats.bump("drain_entries", sent)
        for server, watermark in zip(survivor_servers, survivor_watermarks):
            self._stream_handoff(
                new_ring, server.handoff_plan(new_ring, min_seq=watermark)
            )

        service.adopt_ring(new_ring)

    def scale_in(self, target_active: int) -> ShardRing:
        """Drain shards (highest active index first) until only
        ``target_active`` remain, one complete migration at a time."""
        active = self.service.ring.active_shards
        if not 1 <= target_active < len(active):
            raise TaintMapError(
                f"scale-in target {target_active} is not below the current "
                f"{len(active)} active shard(s) (and at least 1)"
            )
        ring = self.service.ring
        for index in sorted(active, reverse=True)[: len(active) - target_active]:
            ring = self.drain(index)
        return ring

    # -- crash recovery ---------------------------------------------------- #

    def resume(self) -> Optional[ShardRing]:
        """Re-drive an interrupted migration after the crashed shard(s)
        restarted (``ShardedTaintMapService.restart_shard`` recovers
        their state and adopted epoch from the durability store).  Every
        pass is idempotent — entries adopt with setdefault semantics and
        ring flips are monotone — so replaying from the start is safe.
        Returns the migration's target ring, or None if nothing was in
        flight."""
        state = self._resume_state
        if state is None:
            return None
        if state[0] == "grow":
            _, new_ring, old_count = state
            self._run_grow(new_ring, old_count)
        else:
            _, new_ring, shard_index, forward, drained_address = state
            self._run_drain(new_ring, shard_index, forward, drained_address)
        self._resume_state = None
        return new_ring
