"""High-availability Taint Map (paper §VI).

    "it can be improved by some reliable designs, e.g., adding a standby
    node to handle with the single point failure."

This module implements that suggestion: a primary
:class:`~repro.core.taintmap.TaintMapServer` streams every Global-ID
allocation to a standby replica (``OP_SYNC``), and
:class:`FailoverTaintMapClient` transparently switches to the standby
when the primary becomes unreachable.  GID numbering is preserved across
failover because the standby applies allocations verbatim.

Replication and failover **compose per shard**: a sharded deployment
runs one primary/standby pair per shard, and the failover client keeps
an independent active-replica choice per shard — shard 2 losing its
primary never disturbs shard 0's connections.
"""

from __future__ import annotations

import struct
import threading
from typing import Optional, Sequence, Union

from repro.core import taintmap
from repro.core.aio_transport import AsyncTaintMapClient
from repro.core.taintmap import (
    GID_SEQ_MASK,
    STATUS_OK,
    TaintMapClient,
    TaintMapServer,
    _normalize_addresses,
    _recv_exact,
    _send_frame,
)
from repro.errors import TaintMapError
from repro.runtime.kernel import Address, SimKernel, TcpEndpoint

#: Replication opcode: payload = 4-byte GID + serialized tag set.
OP_SYNC = 3


class StandbyTaintMapServer(TaintMapServer):
    """A replica that accepts verbatim GID allocations from the primary."""

    def _handle(self, op: int, payload: bytes) -> tuple[int, bytes]:
        if op == OP_SYNC:
            (gid,) = struct.unpack(">I", payload[:4])
            serialized = payload[4:]
            key = taintmap.taint_key(frozenset(taintmap.deserialize_tags(serialized)))
            with self._lock:
                new_gid = gid not in self._by_gid
                self._by_key[key] = gid
                self._by_gid[gid] = serialized
                # Continue the shard-local sequence after promotion; the
                # shard index lives in the GID's high bits, not the
                # per-shard counter.  Synced *migrated* entries carry a
                # foreign shard's GID — their sequence numbers must not
                # advance this shard's own counter.
                if taintmap.gid_shard(gid) == self.shard_index:
                    self._next_gid = max(self._next_gid, (gid & GID_SEQ_MASK) + 1)
                if new_gid:
                    self._persist_entry_locked(gid, serialized)
            if new_gid:
                # Keep the population counter in sync with the state the
                # sync stream installs: a promoted standby must report
                # the same global_taints the primary did, not 0.
                with self.stats._lock:
                    self.stats.global_taints += 1
                self._maybe_snapshot()
            return STATUS_OK, b""
        return super()._handle(op, payload)


class ReplicatedTaintMapServer(TaintMapServer):
    """A primary that synchronously replicates allocations to a standby.

    Replication failures are tolerated (the standby may be down); the
    primary keeps serving, which matches the paper's best-effort framing.
    """

    def __init__(
        self,
        kernel: SimKernel,
        ip: str,
        port: int,
        standby: Address,
        shard_index: int = 0,
        shard_count: int = 1,
        service_time: float = 0.0,
        ring: Optional[taintmap.ShardRing] = None,
        store=None,
        snapshot_every: Optional[int] = None,
    ):
        super().__init__(
            kernel,
            ip,
            port,
            shard_index,
            shard_count,
            service_time,
            ring=ring,
            store=store,
            snapshot_every=snapshot_every,
        )
        self._standby_address = standby
        self._standby_lock = threading.Lock()
        self._standby_endpoint: Optional[TcpEndpoint] = None
        self.replicated = 0
        self.replication_failures = 0

    def _register(self, tags, serialized: bytes) -> int:
        known = taintmap.taint_key(tags) in self._by_key
        gid = super()._register(tags, serialized)
        if not known:
            self._replicate(gid, serialized)
        return gid

    def _adopt_entry(self, gid: int, serialized: bytes) -> bool:
        # Migrated entries reach the standby through the same OP_SYNC
        # stream as fresh allocations, so a post-handoff promotion
        # resolves and dedups the migrated keys too.
        adopted = super()._adopt_entry(gid, serialized)
        if adopted:
            self._replicate(gid, serialized)
        return adopted

    def _replicate(self, gid: int, serialized: bytes) -> None:
        payload = struct.pack(">I", gid) + serialized
        with self._standby_lock:
            try:
                if self._standby_endpoint is None or self._standby_endpoint.closed:
                    self._standby_endpoint = self._kernel.connect(
                        self.address[0], self._standby_address
                    )
                _send_frame(self._standby_endpoint, bytes([OP_SYNC]), payload)
                status = _recv_exact(self._standby_endpoint, 1)[0]
                (length,) = struct.unpack(">I", _recv_exact(self._standby_endpoint, 4))
                if length:
                    _recv_exact(self._standby_endpoint, length)
                if status == STATUS_OK:
                    self.replicated += 1
                else:
                    self.replication_failures += 1
            except Exception:
                self.replication_failures += 1
                self._standby_endpoint = None


def _append_standbys(
    client: TaintMapClient, standby: Union[Address, Sequence[Address]]
) -> None:
    """Widen each shard's replica list from ``[primary]`` to
    ``[primary, standby]``.  The replica-rotation machinery itself lives
    in the client's per-shard request path — both the pooled and async
    failover clients only widen the lists."""
    standbys = _normalize_addresses(standby)
    if len(standbys) != len(client._shard_replicas):
        raise TaintMapError(
            f"{len(client._shard_replicas)} primary shard(s) but "
            f"{len(standbys)} standby address(es)"
        )
    for replicas, standby_address in zip(client._shard_replicas, standbys):
        replicas.append(standby_address)


class _ActiveAddressMixin:
    #: Optional ``standby_factory(shard_index, primary_address) ->
    #: Optional[Address]`` hook: when a ring adoption appends shards,
    #: each new shard's replica list is widened with the factory's
    #: standby (a None return leaves the shard standby-less).  Without
    #: it, scaled-out shards simply run with one replica until the
    #: deployment wires a standby in.
    standby_factory = None

    @property
    def active_address(self) -> Address:
        """Shard 0's active replica (the single-shard deployment's one)."""
        return self.active_address_for(0)

    def active_address_for(self, shard: int) -> Address:
        return self._shard_replicas[shard][self._active[shard]]

    def _replicas_for_new_shard(self, index: int, address: Address) -> list[Address]:
        replicas = [address]
        factory = self.standby_factory
        if factory is not None:
            standby = factory(index, address)
            if standby is not None:
                replicas.append(tuple(standby))
        return replicas


class FailoverTaintMapClient(_ActiveAddressMixin, TaintMapClient):
    """A client that falls back to the standby when the primary dies.

    ``primary`` and ``standby`` are each one address (single-point
    deployment) or a sequence of per-shard addresses (sharded
    deployment; both sequences in shard order and of equal length).
    ``standby_factory`` names standbys for shards that appear later via
    ring adoption, so failover keeps composing with elastic scale-out.
    """

    def __init__(
        self,
        node,
        primary: Union[Address, Sequence[Address]],
        standby: Union[Address, Sequence[Address]],
        cache_enabled: bool = True,
        cache_capacity: Optional[int] = None,
        standby_factory=None,
    ):
        super().__init__(node, primary, cache_enabled, cache_capacity)
        _append_standbys(self, standby)
        self.standby_factory = standby_factory


class AsyncFailoverTaintMapClient(_ActiveAddressMixin, AsyncTaintMapClient):
    """The failover client on the async multiplexed transport.

    Failover state is the same per-shard ``(replicas, active)`` pair the
    pooled client rotates; a broken multiplexed connection fails every
    in-flight future with a transport error, and each affected request
    retries on the standby (registration and lookup are idempotent, so
    the retry is safe).

    Deadline errors (:class:`~repro.errors.TaintMapDeadlineError`) are
    raised at the sync ``submit`` bridge, *outside* the per-replica
    retry loop: a request that times out is surfaced to the caller
    rather than replayed against the standby — by then the caller has
    already waited the full deadline, and the flush that carried it
    keeps draining (or failing over) in the background.
    """

    def __init__(
        self,
        node,
        primary: Union[Address, Sequence[Address]],
        standby: Union[Address, Sequence[Address]],
        cache_enabled: bool = True,
        cache_capacity: Optional[int] = None,
        standby_factory=None,
        **transport_options,
    ):
        super().__init__(node, primary, cache_enabled, cache_capacity, **transport_options)
        _append_standbys(self, standby)
        self.standby_factory = standby_factory
