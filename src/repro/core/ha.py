"""High-availability Taint Map (paper §VI).

    "it can be improved by some reliable designs, e.g., adding a standby
    node to handle with the single point failure."

This module implements that suggestion: a primary
:class:`~repro.core.taintmap.TaintMapServer` streams every Global-ID
allocation to a standby replica (``OP_SYNC``), and
:class:`FailoverTaintMapClient` transparently switches to the standby
when the primary becomes unreachable.  GID numbering is preserved across
failover because the standby applies allocations verbatim.
"""

from __future__ import annotations

import struct
import threading
from typing import Optional

from repro.core import taintmap
from repro.core.taintmap import (
    STATUS_OK,
    TaintMapClient,
    TaintMapServer,
    _recv_exact,
    _send_frame,
)
from repro.errors import TaintMapError
from repro.runtime.kernel import Address, SimKernel, TcpEndpoint

#: Replication opcode: payload = 4-byte GID + serialized tag set.
OP_SYNC = 3


class StandbyTaintMapServer(TaintMapServer):
    """A replica that accepts verbatim GID allocations from the primary."""

    def _handle(self, op: int, payload: bytes) -> tuple[int, bytes]:
        if op == OP_SYNC:
            (gid,) = struct.unpack(">I", payload[:4])
            serialized = payload[4:]
            key = taintmap.taint_key(frozenset(taintmap.deserialize_tags(serialized)))
            with self._lock:
                self._by_key[key] = gid
                self._by_gid[gid] = serialized
                self._next_gid = max(self._next_gid, gid + 1)
            return STATUS_OK, b""
        return super()._handle(op, payload)


class ReplicatedTaintMapServer(TaintMapServer):
    """A primary that synchronously replicates allocations to a standby.

    Replication failures are tolerated (the standby may be down); the
    primary keeps serving, which matches the paper's best-effort framing.
    """

    def __init__(self, kernel: SimKernel, ip: str, port: int, standby: Address):
        super().__init__(kernel, ip, port)
        self._standby_address = standby
        self._standby_lock = threading.Lock()
        self._standby_endpoint: Optional[TcpEndpoint] = None
        self.replicated = 0
        self.replication_failures = 0

    def _register(self, tags, serialized: bytes) -> int:
        known = taintmap.taint_key(tags) in self._by_key
        gid = super()._register(tags, serialized)
        if not known:
            self._replicate(gid, serialized)
        return gid

    def _replicate(self, gid: int, serialized: bytes) -> None:
        payload = struct.pack(">I", gid) + serialized
        with self._standby_lock:
            try:
                if self._standby_endpoint is None or self._standby_endpoint.closed:
                    self._standby_endpoint = self._kernel.connect(
                        self.address[0], self._standby_address
                    )
                _send_frame(self._standby_endpoint, bytes([OP_SYNC]), payload)
                status = _recv_exact(self._standby_endpoint, 1)[0]
                (length,) = struct.unpack(">I", _recv_exact(self._standby_endpoint, 4))
                if length:
                    _recv_exact(self._standby_endpoint, length)
                if status == STATUS_OK:
                    self.replicated += 1
                else:
                    self.replication_failures += 1
            except Exception:
                self.replication_failures += 1
                self._standby_endpoint = None


class FailoverTaintMapClient(TaintMapClient):
    """A client that falls back to the standby when the primary dies."""

    def __init__(self, node, primary: Address, standby: Address, cache_enabled: bool = True):
        super().__init__(node, primary, cache_enabled)
        self._addresses = [primary, standby]
        self._active = 0

    @property
    def active_address(self) -> Address:
        return self._addresses[self._active]

    def _request(self, op: int, payload: bytes) -> bytes:
        last_error: Optional[Exception] = None
        for _ in range(len(self._addresses)):
            self._address = self._addresses[self._active]
            try:
                return super()._request(op, payload)
            except (ConnectionError, EOFError, OSError, TimeoutError) as exc:
                last_error = exc
                self._endpoint = None
                self._active = (self._active + 1) % len(self._addresses)
        raise TaintMapError(f"all taint map replicas unreachable: {last_error}")
