"""User-facing configuration: source/sink spec files and agent options.

Paper §V-E: users drive DisTA entirely from the launch command —
``-javaagent:DisTA.jar=taintSources=<file>,taintSinks=<file>`` — where the
two files list taint source and sink points as Java method descriptors,
one per line (``#`` comments allowed).  This module parses that surface
and applies it to a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Accepted spellings for boolean launch extras / env switches.
_SWITCH_VALUES = {
    "on": True,
    "true": True,
    "1": True,
    "yes": True,
    "off": False,
    "false": False,
    "0": False,
    "no": False,
}


def parse_switch(value: str, option: str = "option") -> bool:
    """Parse an on/off launch-extra or environment switch value."""
    try:
        return _SWITCH_VALUES[value.strip().lower()]
    except KeyError:
        raise ValueError(
            f"malformed {option} value {value!r} (expected on/off)"
        ) from None


@dataclass
class TaintSpec:
    """Parsed source/sink descriptor lists."""

    sources: list[str] = field(default_factory=list)
    sinks: list[str] = field(default_factory=list)
    #: Fraction of configured source firings that actually taint — the
    #: tainted-traffic knob of the overhead sweep (1.0 = paper default).
    source_fraction: float = 1.0
    #: Budgeted tracking: hard overhead ceiling as a ratio over baseline
    #: (e.g. 1.05).  ``None`` = unlimited: no controller is built and
    #: tracking behaviour is bit-identical to earlier releases.
    overhead_budget: "float | None" = None
    #: Flow-sampling period: track every k-th flow admitted at source
    #: registration.  ``None`` leaves the registries' default (1).
    sample_every: "int | None" = None

    @staticmethod
    def parse_spec_text(text: str) -> list[str]:
        """One method descriptor per line; blanks and ``#`` comments skipped."""
        out = []
        for line in text.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                out.append(line)
        return out

    @classmethod
    def from_texts(cls, sources_text: str = "", sinks_text: str = "") -> "TaintSpec":
        return cls(cls.parse_spec_text(sources_text), cls.parse_spec_text(sinks_text))

    def apply(self, cluster) -> None:
        cluster.configure_sources(self.sources)
        cluster.configure_sinks(self.sinks)
        if self.source_fraction != 1.0:
            cluster.configure_source_fraction(self.source_fraction)
        if self.sample_every is not None:
            cluster.configure_sample_every(self.sample_every)
        if self.overhead_budget is not None:
            cluster.configure_overhead_budget(self.overhead_budget)


@dataclass
class AgentOptions:
    """Options from the ``-javaagent:DisTA.jar=...`` argument string."""

    taint_sources: str = ""
    taint_sinks: str = ""
    taint_map: str = ""
    extras: dict = field(default_factory=dict)

    @classmethod
    def parse(cls, argument: str) -> "AgentOptions":
        """Parse ``key=value`` pairs separated by commas."""
        options = cls()
        if not argument:
            return options
        for pair in argument.split(","):
            if not pair:
                continue
            if "=" not in pair:
                raise ValueError(f"malformed agent option {pair!r} (expected key=value)")
            key, value = pair.split("=", 1)
            if key == "taintSources":
                options.taint_sources = value
            elif key == "taintSinks":
                options.taint_sinks = value
            elif key == "taintMap":
                options.taint_map = value
            else:
                options.extras[key] = value
        return options
