"""Durable Taint Map storage: write-ahead log + compacted snapshots.

The Taint Map is the cluster-wide source of truth for taint tags, and
its one hard invariant is that **no Global ID is ever renumbered** —
every GID put on the wire must resolve at its allocating shard forever.
A purely in-memory shard breaks that invariant on its first restart:
``_next_gid`` resets to 1 and every tag already on the wire silently
aliases a future allocation.  This module supplies the persistence the
invariant needs:

* an **append-only write-ahead log** of ``(gid, serialized_tags)``
  allocations (and ring adoptions), appended *before* a registration's
  response can leave the shard, so a crash never acknowledges a GID it
  cannot replay;
* **periodic compacted snapshots** of the full shard state, after which
  the log truncates — recovery cost stays proportional to the write
  rate since the last snapshot, not to the shard's lifetime.

Both live behind a tiny pluggable store interface.  The default store
writes through the in-sim filesystem (:class:`FileTaintMapStore`) —
deliberately via :class:`~repro.runtime.fs.SimFileSystem` directly, not
the per-node ``NodeFiles`` facade, because WAL traffic must never fire
the file-read taint *source point* (the map's own bookkeeping cannot be
allowed to mint taints).  :class:`MemoryTaintMapStore` backs unit tests
that need to corrupt or replay logs surgically.

Record framing is self-delimiting and checksummed::

    kind:1 | len:4 | payload | crc32:4        (crc over kind + payload)

so a crash mid-append leaves a detectable **torn tail**: replay applies
every intact record and stops at the first incomplete or corrupt one
(counted, not fatal).  The torn record's allocation was by definition
never acknowledged durably, so dropping it is the correct recovery.

This module is intentionally below :mod:`repro.core.taintmap` in the
import graph: payloads are opaque bytes here, and the server owns their
semantics (entry vs ring) — no circular import.
"""

from __future__ import annotations

import struct
import threading
import zlib
from typing import Optional

#: WAL record kinds.  ``WAL_ENTRY`` payload is ``gid:4 | serialized
#: tag set`` (the handoff-chunk entry shape); ``WAL_RING`` payload is an
#: encoded :class:`~repro.core.taintmap.ShardRing` — persisted so a
#: restarted shard resumes judging registrations under the epoch it had
#: adopted, which is what lets it re-serve ``OP_HANDOFF_*`` after a
#: mid-migration crash.
WAL_ENTRY = 1
WAL_RING = 2

#: Snapshot format version (first byte of every snapshot).
SNAPSHOT_VERSION = 1

_RECORD_HEAD = struct.Struct(">BI")
_CRC = struct.Struct(">I")


def pack_record(kind: int, payload: bytes) -> bytes:
    """One framed, checksummed WAL record."""
    return (
        _RECORD_HEAD.pack(kind, len(payload))
        + payload
        + _CRC.pack(zlib.crc32(bytes([kind]) + payload))
    )


def iter_records(raw: bytes) -> tuple[list[tuple[int, bytes]], int]:
    """Decode a log into ``(records, torn)``.

    ``records`` are the intact ``(kind, payload)`` prefix; ``torn`` is 1
    if the log ends in an incomplete or checksum-failing record (a crash
    mid-append), else 0.  Nothing after a torn record is trusted —
    framing downstream of a tear is unrecoverable by construction.
    """
    records: list[tuple[int, bytes]] = []
    pos = 0
    size = len(raw)
    while pos < size:
        if size - pos < _RECORD_HEAD.size:
            return records, 1
        kind, length = _RECORD_HEAD.unpack_from(raw, pos)
        body_end = pos + _RECORD_HEAD.size + length
        if body_end + _CRC.size > size:
            return records, 1
        payload = raw[pos + _RECORD_HEAD.size : body_end]
        (crc,) = _CRC.unpack_from(raw, body_end)
        if crc != zlib.crc32(bytes([kind]) + payload):
            return records, 1
        records.append((kind, payload))
        pos = body_end + _CRC.size
    return records, 0


# --------------------------------------------------------------------- #
# Snapshot codec
# --------------------------------------------------------------------- #
#
# A snapshot must capture *both* maps explicitly.  ``_by_gid`` alone
# cannot reconstruct ``_by_key``: after handoffs/drains a shard may
# resolve several GIDs whose serializations share one structural taint
# key, and which GID the key dedups to was decided by arrival order —
# information the gid map does not carry.


def encode_snapshot(
    next_gid: int,
    ring_bytes: bytes,
    gid_entries,
    key_entries,
) -> bytes:
    """``version:1 | next_gid:4 | ring_len:4 | ring | gid section | key section``."""
    out = [
        struct.pack(">BI", SNAPSHOT_VERSION, next_gid),
        struct.pack(">I", len(ring_bytes)),
        ring_bytes,
    ]
    gid_entries = list(gid_entries)
    out.append(struct.pack(">I", len(gid_entries)))
    for gid, serialized in gid_entries:
        out.append(struct.pack(">II", gid, len(serialized)) + serialized)
    key_entries = list(key_entries)
    out.append(struct.pack(">I", len(key_entries)))
    for key, gid in key_entries:
        out.append(struct.pack(">I", len(key)) + key + struct.pack(">I", gid))
    return b"".join(out)


def decode_snapshot(raw: bytes):
    """Inverse of :func:`encode_snapshot`:
    ``(next_gid, ring_bytes, gid_entries, key_entries)``."""
    version, next_gid = struct.unpack(">BI", raw[:5])
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"unknown taint map snapshot version {version}")
    pos = 5
    (ring_len,) = struct.unpack(">I", raw[pos : pos + 4])
    pos += 4
    ring_bytes = raw[pos : pos + ring_len]
    pos += ring_len
    (gid_count,) = struct.unpack(">I", raw[pos : pos + 4])
    pos += 4
    gid_entries = []
    for _ in range(gid_count):
        gid, length = struct.unpack(">II", raw[pos : pos + 8])
        pos += 8
        gid_entries.append((gid, raw[pos : pos + length]))
        pos += length
    (key_count,) = struct.unpack(">I", raw[pos : pos + 4])
    pos += 4
    key_entries = []
    for _ in range(key_count):
        (length,) = struct.unpack(">I", raw[pos : pos + 4])
        pos += 4
        key = raw[pos : pos + length]
        pos += length
        (gid,) = struct.unpack(">I", raw[pos : pos + 4])
        pos += 4
        key_entries.append((key, gid))
    if pos != len(raw):
        raise ValueError(f"trailing bytes in taint map snapshot ({len(raw) - pos})")
    return next_gid, ring_bytes, gid_entries, key_entries


# --------------------------------------------------------------------- #
# Stores
# --------------------------------------------------------------------- #


class MemoryTaintMapStore:
    """In-process store for tests: a byte log plus one snapshot slot.

    Exposes the raw ``log``/``snapshot`` bytes so recovery edge-case
    tests can tear records, retain a pre-snapshot log, or corrupt
    checksums without a filesystem in the way.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.log = b""
        self.snapshot: Optional[bytes] = None

    def append_log(self, record: bytes) -> None:
        with self._lock:
            self.log += record

    def read_log(self) -> bytes:
        with self._lock:
            return self.log

    def write_snapshot(self, data: bytes) -> None:
        with self._lock:
            self.snapshot = data

    def read_snapshot(self) -> Optional[bytes]:
        with self._lock:
            return self.snapshot

    def truncate_log(self) -> None:
        with self._lock:
            self.log = b""


class FileTaintMapStore:
    """The default store: WAL + snapshot files on the in-sim filesystem.

    Shard *i* persists under ``{root}/shard-{i}/``.  Writes go through
    :class:`~repro.runtime.fs.SimFileSystem` directly — *not* the
    per-node ``NodeFiles`` facade — so the map's own durability traffic
    never fires the file-read taint source point.
    """

    def __init__(self, fs, root: str, shard_index: int) -> None:
        self._fs = fs
        base = f"{root.rstrip('/')}/shard-{shard_index}"
        self.wal_path = f"{base}/wal"
        self.snapshot_path = f"{base}/snapshot"

    def append_log(self, record: bytes) -> None:
        self._fs.append_file(self.wal_path, record)

    def read_log(self) -> bytes:
        if not self._fs.exists(self.wal_path):
            return b""
        return self._fs.read_file(self.wal_path).data

    def write_snapshot(self, data: bytes) -> None:
        self._fs.write_file(self.snapshot_path, data)

    def read_snapshot(self) -> Optional[bytes]:
        if not self._fs.exists(self.snapshot_path):
            return None
        return self._fs.read_file(self.snapshot_path).data

    def truncate_log(self) -> None:
        self._fs.write_file(self.wal_path, b"")
