"""The DisTA agent — the ``-javaagent:DisTA.jar`` equivalent (§III, §V-E).

Attaching the agent to a node is the moral equivalent of launching that
JVM with DisTA's two flags: it connects the node to the Taint Map and
replaces the network-communication JNI methods on the node's
:class:`~repro.jre.jni.JniTable` with the wrappers of
:mod:`repro.core.wrappers`.

:data:`INSTRUMENTED_METHODS` reproduces paper Table I: the 23 method
descriptors DisTA instruments, each with its wrapper type.  Several
descriptors share one simulated patch target (e.g. the JDK has separate
Linux/Windows AIO implementations; our simulated JRE has one dispatcher
surface), and the two ``readv0``/``writev0`` vector variants are covered
because their (unpatched) bodies call the patched scalar methods — the
same effect as the paper wrapping each entry point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.core import wrappers
from repro.core.aio_transport import AsyncTaintMapClient
from repro.core.taintmap import TaintMapClient
from repro.errors import InstrumentationError

#: Recognized Taint Map transports: ``async`` (one multiplexed
#: connection per shard + adaptive cross-message coalescing,
#: :mod:`repro.core.aio_transport` — the default) and ``pooled``
#: (per-shard connection pools, thread-per-request — the classic
#: opt-out via ``DISTA_TAINTMAP_TRANSPORT=pooled``).
TRANSPORTS = ("pooled", "async")

#: The transport used when neither an explicit argument nor the
#: environment picks one.
DEFAULT_TRANSPORT = "async"

#: Environment override for the transport; lets CI run the whole suite
#: on either transport without touching any test code.
TRANSPORT_ENV = "DISTA_TAINTMAP_TRANSPORT"

#: Environment override for the coalescing window (microseconds).
#: Pinning a window also disables adaptive tuning unless
#: ``DISTA_COALESCE_ADAPTIVE`` explicitly re-enables it.
COALESCE_WINDOW_ENV = "DISTA_COALESCE_WINDOW_US"

#: Environment override for adaptive coalescing ("on"/"off").
COALESCE_ADAPTIVE_ENV = "DISTA_COALESCE_ADAPTIVE"

#: Environment override for the per-request deadline (seconds);
#: ``0`` disables the deadline.
DEADLINE_ENV = "DISTA_TAINTMAP_DEADLINE_S"

#: Environment override for the overhead budget (a ratio over baseline,
#: e.g. ``1.05`` = tracking surcharge ≤5%).  ``0``, a negative value or
#: ``unlimited``/``off``/``none`` disable budgeting entirely — the
#: bit-identical full-tracking behaviour.
OVERHEAD_BUDGET_ENV = "DISTA_OVERHEAD_BUDGET"

#: Spellings of "no budget" accepted by the env/extras surface.
_UNLIMITED_BUDGET = ("unlimited", "off", "none", "")


def resolve_transport(transport: Optional[str] = None) -> str:
    """The effective transport: explicit argument, else the
    ``DISTA_TAINTMAP_TRANSPORT`` environment variable, else
    :data:`DEFAULT_TRANSPORT` (async)."""
    choice = transport or os.environ.get(TRANSPORT_ENV) or DEFAULT_TRANSPORT
    if choice not in TRANSPORTS:
        raise InstrumentationError(
            f"unknown taint map transport {choice!r}; expected one of {TRANSPORTS}"
        )
    return choice


def resolve_coalesce_window(window_us: Optional[float] = None) -> Optional[float]:
    """The effective coalescing window (µs), or ``None`` for the
    transport default."""
    if window_us is not None:
        return float(window_us)
    from_env = os.environ.get(COALESCE_WINDOW_ENV)
    return float(from_env) if from_env else None


def resolve_coalesce_adaptive(adaptive: Optional[bool] = None) -> Optional[bool]:
    """Effective adaptive-coalescing override, or ``None`` to defer to
    the transport's policy (adaptive unless a window is pinned)."""
    if adaptive is not None:
        return bool(adaptive)
    from_env = os.environ.get(COALESCE_ADAPTIVE_ENV)
    if not from_env:
        return None
    from repro.core.config import parse_switch

    return parse_switch(from_env, COALESCE_ADAPTIVE_ENV)


def resolve_request_deadline(deadline_s: Optional[float] = None) -> Optional[float]:
    """Effective per-request deadline (s): explicit argument, else
    ``DISTA_TAINTMAP_DEADLINE_S``, else ``None`` for the transport
    default.  A non-positive value disables the deadline."""
    if deadline_s is not None:
        return float(deadline_s)
    from_env = os.environ.get(DEADLINE_ENV)
    return float(from_env) if from_env else None


def parse_overhead_budget(value) -> Optional[float]:
    """One budget spelling → ``None`` (unlimited) or a ratio ≥ 1.0."""
    if value is None:
        return None
    if isinstance(value, str):
        if value.strip().lower() in _UNLIMITED_BUDGET:
            return None
        value = float(value)
    budget = float(value)
    if budget <= 0.0:
        return None
    if budget < 1.0:
        raise InstrumentationError(
            f"overhead budget is a ratio over baseline and must be >= 1.0 "
            f"(or 0/'unlimited' to disable), got {budget}"
        )
    return budget


def resolve_overhead_budget(budget=None) -> Optional[float]:
    """Effective overhead budget: explicit argument, else the
    ``DISTA_OVERHEAD_BUDGET`` environment variable, else ``None``
    (unlimited — no controller, bit-identical full tracking)."""
    if budget is not None:
        return parse_overhead_budget(budget)
    return parse_overhead_budget(os.environ.get(OVERHEAD_BUDGET_ENV))


@dataclass(frozen=True)
class InstrumentedMethod:
    """One row of paper Table I."""

    java_class: str
    method: str
    wrapper_type: int
    #: JniTable attribute patched for this descriptor; ``None`` when the
    #: descriptor is covered via another entry (see module docstring).
    patch_target: Optional[str]
    covered_by: Optional[str] = None


INSTRUMENTED_METHODS: tuple[InstrumentedMethod, ...] = (
    # -- Type 1: stream oriented (TCP) --------------------------------- #
    InstrumentedMethod("java.net.SocketInputStream", "socketRead0", 1, "socket_read0"),
    InstrumentedMethod("java.net.SocketOutputStream", "socketWrite0", 1, "socket_write0"),
    InstrumentedMethod("java.net.SocketInputStream", "socketAvailable", 1, "socket_available"),
    InstrumentedMethod(
        "sun.tools.attach.LinuxVirtualMachine", "read", 1, None, "socket_read0"
    ),
    InstrumentedMethod(
        "sun.tools.attach.LinuxVirtualMachine", "write", 1, None, "socket_write0"
    ),
    # -- Type 2: packet oriented (UDP) ----------------------------------- #
    InstrumentedMethod("java.net.PlainDatagramSocketImpl", "send", 2, "datagram_send"),
    InstrumentedMethod("java.net.PlainDatagramSocketImpl", "receive0", 2, "datagram_receive0"),
    InstrumentedMethod("java.net.PlainDatagramSocketImpl", "peekData", 2, "datagram_peek_data"),
    # -- Type 3: direct buffer oriented (NIO/AIO) -------------------------- #
    InstrumentedMethod("sun.nio.ch.FileDispatcherImpl", "read0", 3, "disp_read0"),
    InstrumentedMethod("sun.nio.ch.FileDispatcherImpl", "write0", 3, "disp_write0"),
    InstrumentedMethod("sun.nio.ch.FileDispatcherImpl", "readv0", 3, None, "disp_read0"),
    InstrumentedMethod("sun.nio.ch.FileDispatcherImpl", "writev0", 3, None, "disp_write0"),
    InstrumentedMethod("sun.nio.ch.DatagramDispatcher", "read0", 3, "dgram_disp_read0"),
    InstrumentedMethod("sun.nio.ch.DatagramDispatcher", "write0", 3, "dgram_disp_write0"),
    InstrumentedMethod("sun.nio.ch.DatagramDispatcher", "readv0", 3, None, "dgram_disp_read0"),
    InstrumentedMethod("sun.nio.ch.DatagramDispatcher", "writev0", 3, None, "dgram_disp_write0"),
    InstrumentedMethod("sun.nio.ch.DatagramChannelImpl", "send0", 3, "dgram_channel_send0"),
    InstrumentedMethod("sun.nio.ch.DatagramChannelImpl", "receive0", 3, "dgram_channel_receive0"),
    InstrumentedMethod("java.nio.DirectByteBuffer", "get", 3, "direct_get"),
    InstrumentedMethod("java.nio.DirectByteBuffer", "put", 3, "direct_put"),
    InstrumentedMethod(
        "sun.nio.ch.IOUtil", "writeFromNativeBuffer", 3, None, "disp_write0"
    ),
    InstrumentedMethod(
        "sun.nio.ch.IOUtil", "readIntoNativeBuffer", 3, None, "disp_read0"
    ),
    InstrumentedMethod(
        "sun.nio.ch.WindowsAsynchronousSocketChannelImpl", "implRead/implWrite", 3, None,
        "disp_read0",
    ),
)

#: patch target → (wrapper type, factory constructor).
_WRAPPER_FACTORIES_BY_TYPE = {
    "socket_read0": (1, wrappers.make_socket_read0),
    "socket_write0": (1, wrappers.make_socket_write0),
    "socket_available": (1, wrappers.make_socket_available),
    "datagram_send": (2, wrappers.make_datagram_send),
    "datagram_receive0": (2, wrappers.make_datagram_receive0),
    "datagram_peek_data": (2, wrappers.make_datagram_peek_data),
    "disp_read0": (3, wrappers.make_disp_read0),
    "disp_write0": (3, wrappers.make_disp_write0),
    "dgram_disp_read0": (3, wrappers.make_dgram_disp_read0),
    "dgram_disp_write0": (3, wrappers.make_dgram_disp_write0),
    "dgram_channel_send0": (3, wrappers.make_dgram_channel_send0),
    "dgram_channel_receive0": (3, wrappers.make_dgram_channel_receive0),
    "direct_get": (3, wrappers.make_direct_get),
    "direct_put": (3, wrappers.make_direct_put),
}

#: patch target → wrapper factory constructor (all types).
_WRAPPER_FACTORIES = {
    name: factory for name, (_type, factory) in _WRAPPER_FACTORIES_BY_TYPE.items()
}


def instrumented_method_count() -> int:
    """The paper's headline: 23 instrumented methods."""
    return len(INSTRUMENTED_METHODS)


class DisTAAgent:
    """Attaches DisTA's inter-node tracking to a simulated JVM.

    ``cache_enabled=False`` and ``byte_granularity=False`` exist only for
    the ablation benchmarks: the former re-registers every taint with the
    Taint Map (no Fig.-9 step-② dedup), the latter coarsens tracking to
    message granularity (one taint for a whole buffer — the over-tainting
    DisTA's byte-level design avoids, §II-D precision factor).
    """

    def __init__(
        self,
        taint_map_address,
        cache_enabled: bool = True,
        byte_granularity: bool = True,
        cache_capacity: Optional[int] = None,
        extensions: tuple = (),
        wrapper_types: frozenset = frozenset({1, 2, 3}),
        trace=None,
        transport: Optional[str] = None,
        coalesce_window_us: Optional[float] = None,
        coalesce_adaptive: Optional[bool] = None,
        request_deadline_s: Optional[float] = None,
        max_pending: Optional[int] = None,
        backpressure: Optional[str] = None,
        overhead_budget=None,
        sample_every: Optional[int] = None,
        budget_warm_start=None,
        cache_admission: Optional[bool] = None,
        lineage=None,
    ):
        #: One ``(ip, port)`` or a sequence of per-shard addresses —
        #: passed straight to :class:`TaintMapClient`, which routes by
        #: consistent hash / GID shard bits.
        self.taint_map_address = taint_map_address
        self.cache_enabled = cache_enabled
        #: Optional LRU bound for the client's GID/taint caches.
        self.cache_capacity = cache_capacity
        self.byte_granularity = byte_granularity
        #: User :class:`~repro.core.extensions.ExtensionPoint`s for
        #: system-specific native methods (paper §VI).
        self.extensions = tuple(extensions)
        #: Ablation only: restrict instrumentation to a subset of the
        #: three wrapper types, modelling partial-coverage tools like
        #: FlowDist's 6 default APIs (§II-D soundness argument).
        self.wrapper_types = frozenset(wrapper_types)
        #: Optional :class:`~repro.core.trace.CrossingTrace` shared by
        #: every node this agent attaches to.
        self.trace = trace
        #: Taint Map transport: "async" (default) or "pooled"; ``None``
        #: defers to ``DISTA_TAINTMAP_TRANSPORT`` at attach time.
        self.transport = transport
        #: Coalescing window (µs) for the async transport; ``None``
        #: defers to ``DISTA_COALESCE_WINDOW_US``/the transport default
        #: (adaptive).  Pinning a window selects the static behaviour.
        self.coalesce_window_us = coalesce_window_us
        #: Adaptive-coalescing override; ``None`` defers to
        #: ``DISTA_COALESCE_ADAPTIVE``, then to the transport policy.
        self.coalesce_adaptive = coalesce_adaptive
        #: Per-request deadline (s) for the async transport; ``None``
        #: defers to ``DISTA_TAINTMAP_DEADLINE_S``/the transport
        #: default; ``0`` disables the deadline.
        self.request_deadline_s = request_deadline_s
        #: Per-shard pending-window high-water mark for the async
        #: transport's backpressure.
        self.max_pending = max_pending
        #: Backpressure policy past the mark: "block" or "shed".
        self.backpressure = backpressure
        #: Budgeted tracking: hard overhead ceiling as a ratio over
        #: baseline (e.g. 1.05), or ``None`` to defer to
        #: ``DISTA_OVERHEAD_BUDGET`` (unlimited when that is unset too
        #: — no controller, bit-identical full tracking).
        self.overhead_budget = overhead_budget
        #: Flow-sampling period: track every k-th flow admitted at
        #: source registration.  With a budget set this is the
        #: controller's floor (maximum coverage); without one it is a
        #: static knob.  ``None`` leaves the registry's value alone.
        self.sample_every = sample_every
        #: Warm start for the budget controller: a snapshot dict (from
        #: :meth:`~repro.taint.budget.OverheadBudgetController.snapshot`)
        #: or its ``"k"``/``"k:method+method"`` string spelling — the
        #: controller resumes at a previous run's converged operating
        #: point instead of re-paying the shed transient.  Ignored when
        #: no budget resolves (there is no controller to warm).
        self.budget_warm_start = budget_warm_start
        #: TinyLFU admission for the client's GID/taint caches; ``None``
        #: keeps the plain-LRU default.
        self.cache_admission = cache_admission
        #: Optional :class:`~repro.obs.lineage.LineageStore` shared by
        #: every node this agent attaches to; each attach builds a
        #: node-stamped :class:`~repro.obs.lineage.LineageRecorder`
        #: feeding it.  ``None`` leaves lineage off (NULL_LINEAGE).
        self.lineage = lineage

    def _make_client(self, node) -> tuple[TaintMapClient, str]:
        transport = resolve_transport(self.transport)
        if transport == "async":
            options = {}
            window = resolve_coalesce_window(self.coalesce_window_us)
            if window is not None:
                options["coalesce_window_us"] = window
            adaptive = resolve_coalesce_adaptive(self.coalesce_adaptive)
            if adaptive is not None:
                options["coalesce_adaptive"] = adaptive
            deadline = resolve_request_deadline(self.request_deadline_s)
            if deadline is not None:
                options["request_deadline_s"] = deadline
            if self.max_pending is not None:
                options["max_pending"] = self.max_pending
            if self.backpressure is not None:
                options["backpressure"] = self.backpressure
            if self.cache_admission is not None:
                options["cache_admission"] = bool(self.cache_admission)
            client = AsyncTaintMapClient(
                node,
                self.taint_map_address,
                self.cache_enabled,
                self.cache_capacity,
                **options,
            )
        else:
            options = {}
            if self.cache_admission is not None:
                options["cache_admission"] = bool(self.cache_admission)
            client = TaintMapClient(
                node,
                self.taint_map_address,
                self.cache_enabled,
                self.cache_capacity,
                **options,
            )
        return client, transport

    def attach(self, node) -> wrappers.DisTARuntime:
        """Patch every instrumentation point on ``node``'s JNI table."""
        if node.jni.instrumented:
            raise InstrumentationError(f"node {node.name} is already instrumented")
        client, transport = self._make_client(node)
        runtime = wrappers.DisTARuntime(
            node, client, self.byte_granularity, transport=transport
        )
        if self.trace is not None:
            runtime.trace = self.trace
        if self.lineage is not None:
            from repro.obs.lineage import LineageRecorder

            recorder = LineageRecorder(self.lineage, node.name)
            runtime.lineage = recorder
            registry = getattr(node, "registry", None)
            if registry is not None:
                registry.lineage = recorder
        for target, (wrapper_type, factory) in _WRAPPER_FACTORIES_BY_TYPE.items():
            if wrapper_type not in self.wrapper_types:
                continue
            node.jni.patch(target, factory(runtime))
        for extension in self.extensions:
            if extension.name in node.jni._extensions:
                node.jni.patch(extension.name, extension.build(runtime))
        node.taintmap = client
        self._apply_budget(node, runtime)
        return runtime

    def _apply_budget(self, node, runtime: wrappers.DisTARuntime) -> None:
        """Wire budgeted tracking onto an attached node.

        A static ``sample_every`` is applied to the source registry
        whether or not a budget is set.  A budget additionally builds an
        :class:`~repro.taint.budget.OverheadBudgetController` (with the
        configured ``sample_every`` as its coverage floor) and attaches
        it to the runtime; with no budget resolved there is no
        controller at all, so tracking behaviour is bit-identical to the
        unbudgeted agent.
        """
        registry = getattr(node, "registry", None)
        if self.sample_every is not None:
            k = int(self.sample_every)
            if k < 1:
                raise InstrumentationError(f"sample_every must be >= 1, got {k}")
            if registry is not None:
                registry.sample_every = k
        budget = resolve_overhead_budget(self.overhead_budget)
        if budget is None:
            return
        from repro.obs.profiler import baseline_reference
        from repro.taint.budget import (
            BudgetConfig,
            OverheadBudgetController,
            parse_budget_warm_start,
        )

        floor = 1
        if registry is not None:
            floor = max(1, int(getattr(registry, "sample_every", 1)))
        config = BudgetConfig(overhead_budget=budget, sample_every=floor)
        controller = OverheadBudgetController(
            config,
            baseline_reference(),
            registry=registry,
            metrics=getattr(node, "metrics", None),
        )
        try:
            warm = parse_budget_warm_start(self.budget_warm_start)
        except ValueError as exc:
            raise InstrumentationError(str(exc)) from exc
        if warm is not None:
            controller.restore(warm)
        runtime.attach_budget(controller)

    def detach(self, node) -> None:
        node.jni.unpatch_all()
        if node.taintmap is not None:
            node.taintmap.close()
            node.taintmap = None
