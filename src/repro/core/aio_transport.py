"""Async multiplexed Taint Map transport with cross-message coalescing.

The pooled :class:`~repro.core.taintmap.TaintMapClient` burns one
blocking thread-and-connection per in-flight request — exactly the
per-request overhead the Taint Rabbit line of work attributes to slow
generic paths.  This module decouples the traced execution from the
tracking traffic instead, and is the **default transport** (opt out
with ``DISTA_TAINTMAP_TRANSPORT=pooled``):

* **One long-lived connection per shard.**  The client upgrades each
  connection with :data:`~repro.core.taintmap.OP_MUX_HELLO`; after the
  acknowledgement every frame carries a 4-byte **correlation id** in
  front of the *unchanged* sync frame bytes, so thousands of requests
  can be in flight at once and responses resolve futures out of order.
  The inner frames — and every payload encoding: taint serialization,
  batch formats, GID packing — are byte-identical to the sync protocol;
  the server dispatches both through the same ``_handle``.

* **A background event loop.**  Each client owns one asyncio loop on a
  daemon thread.  Sync callers (the JNI wrappers) submit work with
  ``run_coroutine_threadsafe`` and block only on their own future (up
  to a configurable ``request_deadline_s`` — a wedged shard fails the
  request with :class:`~repro.errors.TaintMapDeadlineError` instead of
  hanging the wrapper thread); the loop itself never blocks on the
  simulated kernel (endpoint I/O runs on the loop's executor, frame
  arrival is pushed in by a per-connection reader thread).

* **Cross-message coalescing.**  ``gid_for``/``gids_for``/``taint_for``/
  ``taints_for`` misses from concurrent wrappers accumulate in a
  per-shard pending window, flushed when the window reaches
  ``max_batch`` entries or when a coalescing-window timer fires — so
  *k* small messages in flight cost one ``OP_REGISTER_MANY`` /
  ``OP_LOOKUP_MANY`` round-trip per shard per window instead of *k*.
  Identical entries submitted by different messages share one wire
  entry and one future; this is safe because registration is idempotent
  (same taint ⇒ same GID) and lookup is read-only.  Windows size-flush
  **mid-insertion** and flushes chunk at the 16-bit protocol batch
  ceiling (:data:`~repro.core.taintmap.PROTOCOL_MAX_BATCH`), so one
  oversized call can never build an unencodable frame.

* **Adaptive windows.**  By default the coalescing window is tuned
  online per shard by an AIMD controller
  (:class:`AdaptiveWindowController`) driven by the transport's own
  telemetry signals — window occupancy and in-flight depth: wider under
  concurrency (more coalescing per round-trip), collapsing to 0 when
  idle (no added latency).  Pinning ``coalesce_window_us`` explicitly
  selects the classic static window.

* **Backpressure.**  Each shard's pending window (queued + in-flight
  entries) is bounded by ``max_pending``; past the high-water mark new
  entries either **block** until the shard drains (default) or are
  **shed** with :class:`~repro.errors.TaintMapBackpressureError`, both
  counted in ``dista_coalesce_backpressure_total``.

* **Failover with in-flight futures.**  Replica rotation composes per
  shard exactly as in the pooled client: a connection that dies fails
  every pending future with a transport error, and each affected
  request retries on the shard's next replica (idempotency makes the
  retry safe).  Semantic errors (``STATUS_*``) never fail over.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import struct
import threading
import time
from collections import OrderedDict, deque
from itertools import islice
from typing import Optional, Sequence, Union

from repro.core.taintmap import (
    OP_LOOKUP,
    OP_LOOKUP_MANY,
    OP_MUX_HELLO,
    OP_REGISTER,
    OP_REGISTER_MANY,
    PROTOCOL_MAX_BATCH,
    STATUS_GID_EXHAUSTED,
    STATUS_OK,
    STATUS_STALE_RING,
    STATUS_UNKNOWN_GID,
    TRANSPORT_ERRORS,
    TaintMapClient,
    _pack_batch_lookup,
    _pack_batch_register,
    _recv_exact,
    _send_frame,
    _split_batch_lookup_response,
    _split_batch_register,
    deserialize_tags,
    taint_key,
)
from repro.errors import (
    PipeClosed,
    TaintMapBackpressureError,
    TaintMapDeadlineError,
    TaintMapError,
    TaintMapExhaustedError,
    TaintMapTransportError,
)
from repro.runtime.kernel import Address, TcpEndpoint

#: Default coalescing window (µs) — the adaptive controller's starting
#: point, and the static window when adaptivity is disabled.  Long
#: enough that concurrent wrapper calls on one node land in the same
#: flush, short enough to be invisible next to a LAN round-trip.
DEFAULT_WINDOW_US = 200.0

#: Entries that force an immediate flush regardless of the timer.
DEFAULT_MAX_BATCH = 512

#: Per-shard pending-entry high-water mark (queued in windows plus
#: handed to in-flight flushes) before backpressure engages.
DEFAULT_MAX_PENDING = 8192

#: Default wall-clock deadline for one ``submit``/``submit_many`` (s).
#: Generous next to any healthy round-trip; bounds how long a wrapper
#: thread can hang on a wedged shard.
DEFAULT_DEADLINE_S = 30.0

#: AIMD parameters for :class:`AdaptiveWindowController`.
ADAPTIVE_CEILING_US = 5000.0
ADAPTIVE_STEP_US = 50.0
ADAPTIVE_DECAY = 0.5
ADAPTIVE_RELAX = 0.75
#: Windows decayed below this collapse to exactly 0 (idle: no delay).
ADAPTIVE_FLOOR_US = 1.0

#: Mask keeping correlation ids within their 4-byte wire field; the
#: counter itself is unbounded (``itertools.count``) and would
#: eventually overflow ``>I`` without it.
_CORR_MASK = 0xFFFFFFFF

_REGISTER = 0
_LOOKUP = 1

_BACKPRESSURE_POLICIES = ("block", "shed")


def _fail_future(future: "asyncio.Future", exc: Exception) -> None:
    """Fail a future whose consumer may already be gone (cancelled by a
    deadline, or torn down by ``close()``): immediately mark the
    exception retrieved so the event loop doesn't log ``exception was
    never retrieved`` from the future's finalizer.  A consumer that is
    still awaiting gets the exception exactly as with a plain
    ``set_exception``."""
    if not future.done():
        future.set_exception(exc)
        future.exception()


def mux_frame(corr: int, op: int, payload: bytes) -> bytes:
    """One multiplexed request frame: a correlation-id prefix followed
    by the **unchanged** sync frame bytes (``op | len | payload``)."""
    return (
        struct.pack(">I", corr)
        + bytes([op])
        + struct.pack(">I", len(payload))
        + payload
    )


class AdaptiveWindowController:
    """AIMD tuner for one shard's coalescing window.

    Fed at every flush with the transport's own telemetry signals — the
    flushed window's occupancy (``dista_coalesce_window_entries``) and
    the in-flight request depth (``dista_taintmap_inflight_requests``) —
    it steers ``window_us`` between 0 and ``ceiling_us``.  The key
    observation: concurrent arrivals coalesce *naturally* while a
    previous flush is in flight (they queue into the next window), so
    added timer delay only earns its latency cost when traffic is
    fragmenting into tiny round-trips anyway:

    * **Additive increase** (``+step_us``, capped at ``ceiling_us``)
      under genuine window pressure: a size- or backpressure-triggered
      flush (the window filled to its cap), or a *lone-entry* timer
      flush while ≥2 requests are already in flight — per-entry
      round-trips despite concurrency means the window is too narrow
      to aggregate the stream.
    * **Gentle relaxation** (``×relax``) when a timer flush carries
      several entries: natural batching is already working, so the
      delay eases toward the smallest window that keeps it working.
    * **Multiplicative decrease** (``×decay``) when idle: a lone-entry
      timer flush with nothing else in flight is pure added latency —
      the window halves, collapsing to exactly 0 below ``floor_us``,
      which restores the undelayed single-request path.
    """

    __slots__ = (
        "window_us",
        "ceiling_us",
        "step_us",
        "decay",
        "relax",
        "floor_us",
    )

    def __init__(
        self,
        initial_us: float = DEFAULT_WINDOW_US,
        ceiling_us: float = ADAPTIVE_CEILING_US,
        step_us: float = ADAPTIVE_STEP_US,
        decay: float = ADAPTIVE_DECAY,
        relax: float = ADAPTIVE_RELAX,
        floor_us: float = ADAPTIVE_FLOOR_US,
    ):
        self.window_us = min(max(float(initial_us), 0.0), float(ceiling_us))
        self.ceiling_us = float(ceiling_us)
        self.step_us = float(step_us)
        self.decay = float(decay)
        self.relax = float(relax)
        self.floor_us = float(floor_us)

    def on_flush(self, reason: str, entries: int, inflight: float) -> float:
        """Observe one flushed window; returns the adjusted window."""
        if reason != "timer" or (entries <= 1 and inflight >= 2):
            self.window_us = min(self.window_us + self.step_us, self.ceiling_us)
        elif entries >= 2:
            self.window_us *= self.relax
            if self.window_us < self.floor_us:
                self.window_us = 0.0
        else:
            self.window_us *= self.decay
            if self.window_us < self.floor_us:
                self.window_us = 0.0
        return self.window_us


class _InflightCounter:
    """Loop-confined in-flight counter: the gauge-child stand-in on
    nodes without a metrics registry (same ``inc``/``dec``/``value``
    surface), so the adaptive controller always has its signal."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class _MuxConnection:
    """One upgraded connection: correlated frames, out-of-order futures.

    All state except the reader thread is confined to the event loop
    thread; the reader pushes completed frames in with
    ``call_soon_threadsafe``.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        endpoint: TcpEndpoint,
        inflight=None,
    ):
        self._loop = loop
        self._endpoint = endpoint
        self._pending: dict[int, asyncio.Future] = {}
        self._corr = itertools.count(1)
        self._send_lock = asyncio.Lock()
        self._broken: Optional[Exception] = None
        #: Optional gauge child tracking in-flight request depth.
        self._inflight = inflight
        threading.Thread(
            target=self._read_loop, name="taintmap-mux-reader", daemon=True
        ).start()

    @property
    def broken(self) -> bool:
        return self._broken is not None

    async def request(self, op: int, payload: bytes) -> tuple[int, bytes]:
        """Send one frame, await its correlated response (any order)."""
        if self._broken is not None:
            # A fresh exception per caller: re-raising the one cached
            # instance would cross-contaminate tracebacks between
            # unrelated requests (and mutate the original's context).
            raise TaintMapTransportError(
                f"taint map mux connection is broken: {self._broken}"
            ) from self._broken
        corr = next(self._corr) & _CORR_MASK
        # After a 32-bit wrap a fresh id can collide with one still in
        # flight; overwriting its future would leave that caller hanging.
        while corr in self._pending:
            corr = next(self._corr) & _CORR_MASK
        future = self._loop.create_future()
        self._pending[corr] = future
        if self._inflight is not None:
            self._inflight.inc()
        frame = mux_frame(corr, op, payload)
        try:
            # Serialized sends: two interleaved send_all calls would
            # interleave partial writes and desynchronize framing.
            async with self._send_lock:
                await self._loop.run_in_executor(
                    None, self._endpoint.send_all, frame
                )
        except BaseException:
            if self._pending.pop(corr, None) is not None and self._inflight is not None:
                self._inflight.dec()
            raise
        return await future

    # -- reader thread ---------------------------------------------------- #

    def _read_loop(self) -> None:
        try:
            while True:
                first = self._endpoint.recv(1)
                if not first:
                    raise PipeClosed("taint map mux connection closed")
                (corr,) = struct.unpack(">I", first + _recv_exact(self._endpoint, 3))
                status = _recv_exact(self._endpoint, 1)[0]
                (length,) = struct.unpack(">I", _recv_exact(self._endpoint, 4))
                response = _recv_exact(self._endpoint, length) if length else b""
                self._loop.call_soon_threadsafe(self._resolve, corr, status, response)
        except Exception as exc:
            try:
                self._loop.call_soon_threadsafe(self._fail_pending, exc)
            except RuntimeError:
                pass  # loop already closed during shutdown

    # -- loop-thread callbacks ---------------------------------------------- #

    def _resolve(self, corr: int, status: int, response: bytes) -> None:
        future = self._pending.pop(corr, None)
        if future is not None:
            if self._inflight is not None:
                self._inflight.dec()
            if not future.done():
                future.set_result((status, response))

    def _fail_pending(self, exc: Exception) -> None:
        """Connection death: every in-flight future gets the transport
        error, so its request can fail over to the next replica."""
        self._broken = exc
        pending = list(self._pending.values())
        self._pending.clear()
        if pending and self._inflight is not None:
            self._inflight.dec(len(pending))
        for future in pending:
            _fail_future(future, exc)

    def close(self) -> None:
        self._endpoint.close()


class _PendingWindow:
    """One shard's accumulating batch of one kind (register or lookup)."""

    __slots__ = ("entries", "timer")

    def __init__(self) -> None:
        #: entry key (serialized taint bytes, or int GID) → result future.
        self.entries: OrderedDict = OrderedDict()
        self.timer: Optional[asyncio.TimerHandle] = None


class _ShardChannel:
    """Per-shard connection management + replica failover.

    State is event-loop-confined; the replica list and active index are
    shared with the owning client so HA widening
    (:class:`~repro.core.ha.AsyncFailoverTaintMapClient`) and
    ``active_address_for`` introspection keep working unchanged.
    """

    def __init__(self, transport: "AsyncTaintMapTransport", shard: int):
        self._transport = transport
        self._shard = shard
        self._connection: Optional[_MuxConnection] = None
        self._connect_lock = asyncio.Lock()

    async def _connected(self) -> _MuxConnection:
        # A flush racing close() must not re-dial the endpoint the
        # shutdown just tore down (TaintMapError: no replica rotation).
        if self._transport._closed:
            raise TaintMapError("async taint map transport is closed")
        if self._connection is not None and not self._connection.broken:
            return self._connection
        async with self._connect_lock:
            if self._connection is not None and not self._connection.broken:
                return self._connection
            client = self._transport.client
            address = client._shard_replicas[self._shard][
                client._active[self._shard]
            ]
            loop = self._transport.loop
            endpoint = await loop.run_in_executor(
                None, self._transport._connect, address
            )
            self._connection = _MuxConnection(
                loop, endpoint, self._transport._inflight_child
            )
            return self._connection

    def _rotate(self, observed_active: int) -> None:
        """Fail over to the shard's next replica (no-op if a concurrent
        request already rotated past ``observed_active``); always drop
        the broken connection."""
        client = self._transport.client
        stale, self._connection = self._connection, None
        if client._active[self._shard] == observed_active:
            client._active[self._shard] = (observed_active + 1) % len(
                client._shard_replicas[self._shard]
            )
        if stale is not None:
            try:
                stale.close()
            except Exception:
                client.stats.bump("close_errors")

    async def roundtrip(self, op: int, payload: bytes) -> tuple[int, bytes]:
        """One request with per-shard replica failover.  Transport
        errors rotate and retry (idempotent ops make the retry safe);
        protocol-level statuses are returned to the caller."""
        client = self._transport.client
        replicas = client._shard_replicas[self._shard]
        last_error: Optional[Exception] = None
        for _ in range(len(replicas)):
            observed_active = client._active[self._shard]
            started = time.perf_counter()
            try:
                connection = await self._connected()
                status, response = await connection.request(op, payload)
            except TRANSPORT_ERRORS as exc:
                last_error = exc
                self._rotate(observed_active)
                continue
            with client.stats._lock:
                client.requests_sent += 1
            client._observe_rpc(op, time.perf_counter() - started)
            return status, response
        if len(replicas) == 1:
            raise last_error  # single replica: surface the transport error
        raise TaintMapError(f"all taint map replicas unreachable: {last_error}")

    def fail_pending(self, exc: Exception) -> None:
        """Shutdown hook: fail every request future still correlated on
        this channel's connection (callers are about to be torn down)."""
        connection = self._connection
        if connection is not None:
            connection._fail_pending(exc)

    def close(self) -> None:
        connection, self._connection = self._connection, None
        if connection is not None:
            try:
                connection.close()
            except Exception:
                self._transport.client.stats.bump("close_errors")


class AsyncTaintMapTransport:
    """The event-loop half of :class:`AsyncTaintMapClient`.

    ``submit``/``submit_many`` are the sync bridge: they accept the
    pooled client's ``(shard, op, payload)`` request shape, route the
    four map ops through the coalescing windows, and return response
    payloads in exactly the sync protocol's formats — so the caching
    and batching logic of :class:`~repro.core.taintmap.TaintMapClient`
    runs unmodified on top.
    """

    def __init__(
        self,
        client: TaintMapClient,
        coalesce_window_us: Optional[float] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        coalesce_adaptive: Optional[bool] = None,
        request_deadline_s: Optional[float] = DEFAULT_DEADLINE_S,
        max_pending: int = DEFAULT_MAX_PENDING,
        backpressure: str = "block",
    ):
        if max_batch < 1:
            raise TaintMapError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise TaintMapError(f"max_pending must be >= 1, got {max_pending}")
        if backpressure not in _BACKPRESSURE_POLICIES:
            raise TaintMapError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {_BACKPRESSURE_POLICIES}"
            )
        self.client = client
        #: Adaptive by default; pinning an explicit window selects the
        #: classic static behaviour unless ``coalesce_adaptive=True``
        #: asks for tuning from that starting point.
        if coalesce_adaptive is None:
            coalesce_adaptive = coalesce_window_us is None
        self.coalesce_adaptive = bool(coalesce_adaptive)
        self.coalesce_window_us = (
            DEFAULT_WINDOW_US
            if coalesce_window_us is None
            else max(float(coalesce_window_us), 0.0)
        )
        #: A flush frame's entry count is wire-encoded in 16 bits;
        #: larger thresholds would build unencodable windows.
        self.max_batch = min(max_batch, PROTOCOL_MAX_BATCH)
        self.request_deadline_s = (
            None
            if request_deadline_s is None or request_deadline_s <= 0
            else float(request_deadline_s)
        )
        self.max_pending = max_pending
        self.backpressure = backpressure
        shard_count = len(client._shard_replicas)
        self._controllers: Optional[list[AdaptiveWindowController]] = (
            [
                AdaptiveWindowController(self.coalesce_window_us)
                for _ in range(shard_count)
            ]
            if self.coalesce_adaptive
            else None
        )
        #: Per-shard pending entries: queued in windows + handed to
        #: in-flight flushes.  Drained (and waiters woken) as flushes
        #: complete.
        self._pending_counts = [0] * shard_count
        self._drain_waiters: list[deque] = [deque() for _ in range(shard_count)]
        #: Entries owned by in-flight ``_flush`` tasks, so ``close()``
        #: can fail their futures too (they are in no window anymore).
        self._inflight_flushes: dict[int, OrderedDict] = {}
        self._flush_ids = itertools.count(1)
        # Coalescing/in-flight telemetry on the owning node's registry
        # (None for bare test nodes).  Families and their reason
        # children are pre-declared so /metrics always exposes them.
        self._flush_reason = None
        self._window_entries = None
        self._backpressure_total = None
        self._window_gauge = None
        self._inflight_child = _InflightCounter()
        metrics = getattr(client, "_metrics", None)
        if metrics is not None:
            self._flush_reason = metrics.counter(
                "dista_coalesce_flush_total",
                "Coalescing-window flushes by trigger (size/timer/backpressure).",
                ("reason",),
            )
            for reason in ("size", "timer", "backpressure"):
                self._flush_reason.labels(reason=reason)
            self._window_entries = metrics.histogram(
                "dista_coalesce_window_entries",
                "Entries per flushed coalescing window.",
                (),
                lowest=1.0,
                buckets=16,
            )
            self._backpressure_total = metrics.counter(
                "dista_coalesce_backpressure_total",
                "Entries gated at a shard's pending-window high-water mark.",
                ("action",),
            )
            for action in ("block", "shed"):
                self._backpressure_total.labels(action=action)
            self._window_gauge = metrics.gauge(
                "dista_coalesce_window_us",
                "Current coalescing window per shard in microseconds "
                "(driven by the AIMD controller when adaptive).",
                ("shard",),
            )
            self._inflight_child = metrics.gauge(
                "dista_taintmap_inflight_requests",
                "Requests in flight on the multiplexed Taint Map connections.",
            ).labels()
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._lifecycle_lock = threading.Lock()
        self._channels: list[_ShardChannel] = []
        self._windows: list[tuple[_PendingWindow, _PendingWindow]] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------- #

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lifecycle_lock:
            if self._closed:
                raise TaintMapError("async taint map transport is closed")
            if self.loop is None:
                self.loop = asyncio.new_event_loop()
                # The client's replica list may have grown (ring adopted
                # before first use); size every per-shard list from it.
                self._grow_state(len(self.client._shard_replicas))
                self._thread = threading.Thread(
                    target=self.loop.run_forever, name="taintmap-aio", daemon=True
                )
                self._thread.start()
            return self.loop

    def _grow_state(self, shard_count: int) -> None:
        """Append per-shard state up to ``shard_count`` (never shrinks).

        Must run on the event-loop thread once the loop exists — every
        list here is loop-confined after start.  Channels dial lazily,
        so a shard that appears mid-flight costs nothing until its
        first request opens the mux connection.
        """
        while len(self._pending_counts) < shard_count:
            self._pending_counts.append(0)
            self._drain_waiters.append(deque())
            if self._controllers is not None:
                self._controllers.append(
                    AdaptiveWindowController(self.coalesce_window_us)
                )
        if self.loop is not None:
            while len(self._channels) < shard_count:
                self._channels.append(_ShardChannel(self, len(self._channels)))
                self._windows.append((_PendingWindow(), _PendingWindow()))

    def grow_to(self, shard_count: int) -> None:
        """Ring adoption hook: make every per-shard structure cover
        ``shard_count`` shards before the client's router can return a
        new index.  Safe from any thread; loop-confined state is grown
        on the loop itself (inline when already running there — the
        stale-ring re-route path calls this mid-flush)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            loop = self.loop
            if loop is None:
                self._grow_state(shard_count)
                return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._grow_state(shard_count)
            return

        async def grow() -> None:
            self._grow_state(shard_count)

        try:
            asyncio.run_coroutine_threadsafe(grow(), loop).result(10)
        except RuntimeError:
            pass  # loop stopped by a concurrent close(): nothing to grow

    def readdress(self, indices: Sequence[int]) -> None:
        """Drain adoption hook: the listed shard slots now forward to a
        surviving shard's address.  Cached mux connections for them are
        *dropped without closing* — in-flight requests finish on the old
        connection (the drained process keeps serving until the cluster
        stops it), while every new request dials the forwarding address.
        Safe from any thread; channel state is swapped on the loop."""
        with self._lifecycle_lock:
            if self._closed:
                return
            loop = self.loop
            if loop is None:
                return  # no connections exist before the loop starts

        def drop() -> None:
            for index in indices:
                if index < len(self._channels):
                    self._channels[index]._connection = None

        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            drop()
            return

        async def drop_async() -> None:
            drop()

        try:
            asyncio.run_coroutine_threadsafe(drop_async(), loop).result(10)
        except RuntimeError:
            pass  # loop stopped by a concurrent close(): nothing to drop

    def close(self) -> None:
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            loop = self.loop
            thread, self._thread = self._thread, None
            # The per-shard lists (and self.loop) stay in place: in-flight
            # _flush/_dispatch tasks still index them, and swapping in
            # empty lists would turn their teardown paths (_drain,
            # _coalesce) into IndexErrors instead of clean closed errors.
            # Only their *contents* are failed and cleared below.
            channels = self._channels
            windows = self._windows
            waiters = self._drain_waiters
            inflight_flushes, self._inflight_flushes = self._inflight_flushes, {}
        if loop is None:
            return

        async def shutdown() -> None:
            closed = TaintMapError("async taint map transport is closed")
            for register_window, lookup_window in windows:
                for window in (register_window, lookup_window):
                    if window.timer is not None:
                        window.timer.cancel()
                        window.timer = None
                    for future in window.entries.values():
                        _fail_future(future, closed)
                    window.entries.clear()
            # Entries already handed to an in-flight _flush task are in
            # no window anymore — without failing them here, their sync
            # submitters would block in submit().result() forever.
            for entries in inflight_flushes.values():
                for future in entries.values():
                    _fail_future(future, closed)
            for shard_waiters in waiters:
                while shard_waiters:
                    _fail_future(shard_waiters.popleft(), closed)
            for channel in channels:
                # TaintMapError is not a TRANSPORT_ERROR, so awakened
                # roundtrips propagate it instead of rotating replicas.
                channel.fail_pending(closed)
                channel.close()
            # Let the awakened _dispatch/_flush tasks run to completion
            # (their futures are already failed) so every
            # run_coroutine_threadsafe caller unblocks before the loop
            # stops processing callbacks.
            current = asyncio.current_task()
            tasks = [task for task in asyncio.all_tasks() if task is not current]
            if tasks:
                await asyncio.wait(tasks, timeout=5)
            loop.stop()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), loop)
        except RuntimeError:
            return
        if thread is not None:
            thread.join(timeout=10)
        try:
            # Close the loop even when the join timed out: a wedged
            # executor job must not leak the loop object.  A loop still
            # running raises RuntimeError; nothing more can be done
            # short of killing daemon threads.
            loop.close()
        except RuntimeError:
            pass

    def _connect(self, address: Address) -> TcpEndpoint:
        """Blocking connect + OP_MUX_HELLO upgrade (runs on executor)."""
        node = self.client._node
        endpoint = node.kernel.connect(node.ip, address)
        try:
            _send_frame(endpoint, bytes([OP_MUX_HELLO]), b"")
            status = _recv_exact(endpoint, 1)[0]
            (length,) = struct.unpack(">I", _recv_exact(endpoint, 4))
            if length:
                _recv_exact(endpoint, length)
            if status != STATUS_OK:
                raise TaintMapError(
                    f"taint map refused multiplexed upgrade (status {status})"
                )
        except BaseException:
            endpoint.close()
            raise
        return endpoint

    # -- sync bridge -------------------------------------------------------- #

    def submit(self, shard: int, op: int, payload: bytes) -> bytes:
        loop = self._ensure_loop()
        future = asyncio.run_coroutine_threadsafe(
            self._dispatch(shard, op, payload), loop
        )
        return self._result_within_deadline(future)

    def submit_many(self, calls: Sequence[tuple[int, int, bytes]]) -> list[bytes]:
        loop = self._ensure_loop()

        async def run_all() -> list[bytes]:
            return await asyncio.gather(
                *(self._dispatch(shard, op, payload) for shard, op, payload in calls)
            )

        return self._result_within_deadline(
            asyncio.run_coroutine_threadsafe(run_all(), loop)
        )

    def _result_within_deadline(self, future):
        """Block the sync caller on its future, bounded by the deadline:
        a wedged shard (or stalled loop) fails the request with a
        timeout error instead of hanging the wrapper thread forever."""
        deadline = self.request_deadline_s
        if deadline is None:
            return future.result()
        try:
            return future.result(deadline)
        # Both classes: future.result raises concurrent.futures.TimeoutError,
        # which is only an alias of the builtin from 3.11 on.
        except (TimeoutError, concurrent.futures.TimeoutError):
            if future.done():
                raise  # the request itself failed with a timeout-type error
            future.cancel()  # window futures are shielded; peers unaffected
            raise TaintMapDeadlineError(
                f"taint map request exceeded its {deadline}s deadline"
            ) from None

    # -- op dispatch (loop thread) ------------------------------------------- #

    async def _dispatch(self, shard: int, op: int, payload: bytes) -> bytes:
        """Route one sync-protocol request through the coalescing
        windows, returning the response payload the sync protocol
        would have produced."""
        if op == OP_REGISTER:
            gids = await self._coalesce(shard, _REGISTER, [bytes(payload)])
            return struct.pack(">I", gids[0])
        if op == OP_REGISTER_MANY:
            entries = _split_batch_register(payload)
            gids = await self._coalesce(shard, _REGISTER, entries)
            return struct.pack(f">{len(gids)}I", *gids)
        if op == OP_LOOKUP:
            (gid,) = struct.unpack(">I", payload)
            values = await self._coalesce(shard, _LOOKUP, [gid])
            return values[0]
        if op == OP_LOOKUP_MANY:
            (count,) = struct.unpack(">H", payload[:2])
            gids = list(struct.unpack(f">{count}I", payload[2:]))
            values = await self._coalesce(shard, _LOOKUP, gids)
            return b"".join(
                struct.pack(">I", len(value)) + value for value in values
            )
        # Unknown/extension op: pass through un-coalesced.
        status, response = await self._channels[shard].roundtrip(op, payload)
        self._check_status(status)
        return response

    @staticmethod
    def _check_status(status: int) -> None:
        if status == STATUS_UNKNOWN_GID:
            raise TaintMapError("unknown Global ID")
        if status == STATUS_STALE_RING:
            # Register windows re-home via _reroute_register before this
            # check; any other op seeing it is a protocol violation.
            raise TaintMapError("taint map rejected request routed on a stale ring")
        if status == STATUS_GID_EXHAUSTED:
            # Structured and non-retried: the shard is healthy but has no
            # sequence numbers left — rotating to a standby (which
            # replicates the same exhausted counter) cannot help, so this
            # must never burn a failover.
            raise TaintMapExhaustedError(
                "taint map shard has exhausted its Global-ID sequence space"
            )
        if status != STATUS_OK:
            raise TaintMapError(f"taint map rejected request (status {status})")

    # -- coalescing windows (loop thread) ------------------------------------- #

    def window_us_for(self, shard: int) -> float:
        """The shard's current coalescing window (adaptive or static)."""
        if self._controllers is not None:
            return self._controllers[shard].window_us
        return self.coalesce_window_us

    async def _coalesce(self, shard: int, kind: int, keys: Sequence) -> list:
        """Enqueue ``keys`` into the shard's pending window and await
        their results.  The window size-flushes **mid-insertion**, so
        one oversized call never builds a window beyond ``max_batch``
        (and hence never beyond the 16-bit protocol frame ceiling),
        while a small call's keys still share one flush even with a
        zero-length window."""
        if self._closed:
            raise TaintMapError("async taint map transport is closed")
        window = self._windows[shard][kind]
        futures = []
        for key in keys:
            future = window.entries.get(key)
            if future is None and self._pending_counts[shard] >= self.max_pending:
                await self._admit(shard, kind)
                # Re-check after blocking: close() may have torn the
                # windows down (entries queued now would never resolve),
                # and a concurrent caller may have queued the same key.
                if self._closed:
                    raise TaintMapError("async taint map transport is closed")
                future = window.entries.get(key)
            if future is None:
                future = self.loop.create_future()
                window.entries[key] = future
                self._pending_counts[shard] += 1
                if len(window.entries) >= self.max_batch:
                    self._flush_now(shard, kind, "size")
            futures.append(future)
        if window.entries and window.timer is None:
            delay = self.window_us_for(shard) / 1e6
            window.timer = self.loop.call_later(
                delay, self._flush_now, shard, kind, "timer"
            )
        # Shield the shared window futures: a deadline-cancelled caller
        # must not cancel entries other callers are awaiting.
        results = await asyncio.gather(
            *(asyncio.shield(future) for future in futures),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    async def _admit(self, shard: int, kind: int) -> None:
        """Backpressure gate for one new entry at the high-water mark:
        shed immediately, or block until in-flight flushes drain."""
        while self._pending_counts[shard] >= self.max_pending:
            if self.backpressure == "shed":
                if self._backpressure_total is not None:
                    self._backpressure_total.labels(action="shed").inc()
                raise TaintMapBackpressureError(
                    f"shard {shard} pending window at its high-water mark "
                    f"({self.max_pending} entries); shedding request"
                )
            # Before parking, start draining the shard: flush both of
            # its parked windows now rather than waiting out their
            # timers (a long window at the mark is pure queueing).
            for parked_kind in (_REGISTER, _LOOKUP):
                if self._windows[shard][parked_kind].entries:
                    self._flush_now(shard, parked_kind, "backpressure")
            if self._backpressure_total is not None:
                self._backpressure_total.labels(action="block").inc()
            waiter = self.loop.create_future()
            self._drain_waiters[shard].append(waiter)
            try:
                await waiter
            finally:
                if not waiter.done():
                    waiter.cancel()

    def _drain(self, shard: int, count: int) -> None:
        """A flush completed: release its entries' pending budget and
        wake blocked admitters (each re-checks the mark)."""
        self._pending_counts[shard] -= count
        waiters = self._drain_waiters[shard]
        while waiters:
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    def _flush_now(self, shard: int, kind: int, reason: str = "size") -> None:
        window = self._windows[shard][kind]
        if window.timer is not None:
            window.timer.cancel()
            window.timer = None
        if not window.entries:
            return
        entries, window.entries = window.entries, OrderedDict()
        if self._controllers is not None:
            adjusted = self._controllers[shard].on_flush(
                reason, len(entries), self._inflight_child.value
            )
            if self._window_gauge is not None:
                self._window_gauge.labels(shard=str(shard)).set(adjusted)
        if self._flush_reason is not None:
            self._flush_reason.labels(reason=reason).inc()
            self._window_entries.observe(len(entries))
        flush_id = next(self._flush_ids)
        self._inflight_flushes[flush_id] = entries
        self.loop.create_task(self._flush(shard, kind, entries, flush_id))

    async def _flush(
        self, shard: int, kind: int, entries: OrderedDict, flush_id: int
    ) -> None:
        """The wire round-trip(s) for an accumulated window; resolves
        every entry future (out of order relative to other flushes) and
        pops entries from ``entries`` as they settle, so shutdown can
        fail exactly the still-pending remainder."""
        drained = len(entries)
        try:
            if kind == _REGISTER:
                await self._flush_register(shard, entries)
            else:
                await self._flush_lookup(shard, entries)
        except Exception as exc:
            for future in entries.values():
                _fail_future(future, exc)
        finally:
            self._inflight_flushes.pop(flush_id, None)
            self._drain(shard, drained)

    async def _flush_register(
        self, shard: int, entries: OrderedDict, attempts: int = 0
    ) -> None:
        # Chunk at the protocol ceiling: max_batch is clamped below it,
        # but a window must never be *able* to build an unencodable
        # frame whatever path filled it.
        while entries:
            keys = list(islice(entries, PROTOCOL_MAX_BATCH))
            status, response = await self._channels[shard].roundtrip(
                OP_REGISTER_MANY, _pack_batch_register(keys)
            )
            if status == STATUS_STALE_RING:
                await self._reroute_register(shard, entries, response, attempts)
                return
            self._check_status(status)
            gids = struct.unpack(f">{len(keys)}I", response)
            for key, gid in zip(keys, gids):
                future = entries.pop(key)
                if not future.done():
                    future.set_result(gid)

    async def _reroute_register(
        self, shard: int, entries: OrderedDict, response: bytes, attempts: int
    ) -> None:
        """Drain/re-home a register window the server stale-rung.

        The reply's ring is adopted (which grows this transport's
        per-shard state inline — we are on the loop thread), the
        window's entries regroup under the new router, and each group
        replays through the normal flush path on its new shard's
        channel.  The in-flight futures ride along untouched: submitters
        blocked in ``submit()`` never observe the epoch flip.
        """
        client = self.client
        error = client._stale_ring_error(shard, response)
        if error.ring is None or attempts + 1 >= client.RING_RETRY_LIMIT:
            raise error  # _flush fails the window's remaining futures
        if attempts > 0:
            await asyncio.sleep(min(0.001 * (1 << attempts), 0.05))
        router = client._router
        regroup: dict[int, OrderedDict] = {}
        for key, future in entries.items():
            target = router.shard_for_key(taint_key(frozenset(deserialize_tags(key))))
            regroup.setdefault(target, OrderedDict())[key] = future
        entries.clear()

        async def flush_group(target: int, group: OrderedDict) -> None:
            try:
                await self._flush_register(target, group, attempts + 1)
            except Exception as exc:
                # Fail only this group's remainder: groups re-homed to
                # healthy shards must still resolve.
                for future in group.values():
                    _fail_future(future, exc)

        await asyncio.gather(
            *(flush_group(target, group) for target, group in regroup.items())
        )

    async def _flush_lookup(self, shard: int, entries: OrderedDict) -> None:
        while entries:
            keys = list(islice(entries, PROTOCOL_MAX_BATCH))
            status, response = await self._channels[shard].roundtrip(
                OP_LOOKUP_MANY, _pack_batch_lookup(keys)
            )
            if status == STATUS_UNKNOWN_GID and len(response) == 4:
                # The server names the offending GID: fail that entry
                # alone and retry the remainder (one extra round-trip)
                # instead of failing the whole window.
                (bad,) = struct.unpack(">I", response)
                future = entries.pop(bad, None)
                if future is not None:
                    _fail_future(future, TaintMapError("unknown Global ID"))
                    continue
            self._check_status(status)
            serialized = _split_batch_lookup_response(response, len(keys))
            for key, value in zip(keys, serialized):
                future = entries.pop(key)
                if not future.done():
                    future.set_result(value)


class AsyncTaintMapClient(TaintMapClient):
    """Drop-in :class:`~repro.core.taintmap.TaintMapClient` whose
    transport is one multiplexed connection per shard plus cross-message
    coalescing.  The sync ``gid_for``/``gids_for``/``taint_for``/
    ``taints_for`` API, both-direction caches, shard routing, and HA
    failover semantics are all inherited — only the two request-path
    hooks (``_request`` / ``_request_by_shard``) change.
    """

    transport_name = "async"

    def __init__(
        self,
        node,
        address: Union[Address, Sequence[Address]],
        cache_enabled: bool = True,
        cache_capacity: Optional[int] = None,
        coalesce_window_us: Optional[float] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        coalesce_adaptive: Optional[bool] = None,
        request_deadline_s: Optional[float] = DEFAULT_DEADLINE_S,
        max_pending: int = DEFAULT_MAX_PENDING,
        backpressure: str = "block",
        cache_admission: bool = False,
    ):
        super().__init__(node, address, cache_enabled, cache_capacity, cache_admission)
        self.transport = AsyncTaintMapTransport(
            self,
            coalesce_window_us,
            max_batch,
            coalesce_adaptive=coalesce_adaptive,
            request_deadline_s=request_deadline_s,
            max_pending=max_pending,
            backpressure=backpressure,
        )

    def _on_shards_grown(self, shard_count: int) -> None:
        self.transport.grow_to(shard_count)

    def _on_shards_readdressed(self, indices) -> None:
        self.transport.readdress(indices)

    def _request(self, op: int, payload: bytes, shard: int = 0) -> bytes:
        return self.transport.submit(shard, op, payload)

    def _request_by_shard(
        self, calls: Sequence[tuple[int, int, bytes]]
    ) -> list[bytes]:
        return self.transport.submit_many(calls)

    def close(self) -> None:
        self.transport.close()
        super().close()
