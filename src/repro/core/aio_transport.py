"""Async multiplexed Taint Map transport with cross-message coalescing.

The pooled :class:`~repro.core.taintmap.TaintMapClient` burns one
blocking thread-and-connection per in-flight request — exactly the
per-request overhead the Taint Rabbit line of work attributes to slow
generic paths.  This module decouples the traced execution from the
tracking traffic instead:

* **One long-lived connection per shard.**  The client upgrades each
  connection with :data:`~repro.core.taintmap.OP_MUX_HELLO`; after the
  acknowledgement every frame carries a 4-byte **correlation id** in
  front of the *unchanged* sync frame bytes, so thousands of requests
  can be in flight at once and responses resolve futures out of order.
  The inner frames — and every payload encoding: taint serialization,
  batch formats, GID packing — are byte-identical to the sync protocol;
  the server dispatches both through the same ``_handle``.

* **A background event loop.**  Each client owns one asyncio loop on a
  daemon thread.  Sync callers (the JNI wrappers) submit work with
  ``run_coroutine_threadsafe`` and block only on their own future; the
  loop itself never blocks on the simulated kernel (endpoint I/O runs
  on the loop's executor, frame arrival is pushed in by a per-connection
  reader thread).

* **Cross-message coalescing.**  ``gid_for``/``gids_for``/``taint_for``/
  ``taints_for`` misses from concurrent wrappers accumulate in a
  per-shard pending window, flushed when the window reaches
  ``max_batch`` entries or when a ``coalesce_window_us`` timer fires —
  so *k* small messages in flight cost one ``OP_REGISTER_MANY`` /
  ``OP_LOOKUP_MANY`` round-trip per shard per window instead of *k*.
  Identical entries submitted by different messages share one wire
  entry and one future; this is safe because registration is idempotent
  (same taint ⇒ same GID) and lookup is read-only.

* **Failover with in-flight futures.**  Replica rotation composes per
  shard exactly as in the pooled client: a connection that dies fails
  every pending future with a transport error, and each affected
  request retries on the shard's next replica (idempotency makes the
  retry safe).  Semantic errors (``STATUS_*``) never fail over.
"""

from __future__ import annotations

import asyncio
import itertools
import struct
import threading
import time
from collections import OrderedDict
from typing import Optional, Sequence, Union

from repro.core.taintmap import (
    OP_LOOKUP,
    OP_LOOKUP_MANY,
    OP_MUX_HELLO,
    OP_REGISTER,
    OP_REGISTER_MANY,
    STATUS_OK,
    STATUS_UNKNOWN_GID,
    TRANSPORT_ERRORS,
    TaintMapClient,
    _pack_batch_register,
    _recv_exact,
    _send_frame,
    _split_batch_lookup_response,
    _split_batch_register,
)
from repro.errors import PipeClosed, TaintMapError
from repro.runtime.kernel import Address, TcpEndpoint

#: Default coalescing window (µs).  Long enough that concurrent wrapper
#: calls on one node land in the same flush, short enough to be
#: invisible next to a LAN round-trip.
DEFAULT_WINDOW_US = 200.0

#: Entries that force an immediate flush regardless of the timer.
DEFAULT_MAX_BATCH = 512

_REGISTER = 0
_LOOKUP = 1


def mux_frame(corr: int, op: int, payload: bytes) -> bytes:
    """One multiplexed request frame: a correlation-id prefix followed
    by the **unchanged** sync frame bytes (``op | len | payload``)."""
    return (
        struct.pack(">I", corr)
        + bytes([op])
        + struct.pack(">I", len(payload))
        + payload
    )


class _MuxConnection:
    """One upgraded connection: correlated frames, out-of-order futures.

    All state except the reader thread is confined to the event loop
    thread; the reader pushes completed frames in with
    ``call_soon_threadsafe``.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        endpoint: TcpEndpoint,
        inflight=None,
    ):
        self._loop = loop
        self._endpoint = endpoint
        self._pending: dict[int, asyncio.Future] = {}
        self._corr = itertools.count(1)
        self._send_lock = asyncio.Lock()
        self._broken: Optional[Exception] = None
        #: Optional gauge child tracking in-flight request depth.
        self._inflight = inflight
        threading.Thread(
            target=self._read_loop, name="taintmap-mux-reader", daemon=True
        ).start()

    @property
    def broken(self) -> bool:
        return self._broken is not None

    async def request(self, op: int, payload: bytes) -> tuple[int, bytes]:
        """Send one frame, await its correlated response (any order)."""
        if self._broken is not None:
            raise self._broken
        corr = next(self._corr)
        future = self._loop.create_future()
        self._pending[corr] = future
        if self._inflight is not None:
            self._inflight.inc()
        frame = mux_frame(corr, op, payload)
        try:
            # Serialized sends: two interleaved send_all calls would
            # interleave partial writes and desynchronize framing.
            async with self._send_lock:
                await self._loop.run_in_executor(
                    None, self._endpoint.send_all, frame
                )
        except BaseException:
            if self._pending.pop(corr, None) is not None and self._inflight is not None:
                self._inflight.dec()
            raise
        return await future

    # -- reader thread ---------------------------------------------------- #

    def _read_loop(self) -> None:
        try:
            while True:
                first = self._endpoint.recv(1)
                if not first:
                    raise PipeClosed("taint map mux connection closed")
                (corr,) = struct.unpack(">I", first + _recv_exact(self._endpoint, 3))
                status = _recv_exact(self._endpoint, 1)[0]
                (length,) = struct.unpack(">I", _recv_exact(self._endpoint, 4))
                response = _recv_exact(self._endpoint, length) if length else b""
                self._loop.call_soon_threadsafe(self._resolve, corr, status, response)
        except Exception as exc:
            try:
                self._loop.call_soon_threadsafe(self._fail_pending, exc)
            except RuntimeError:
                pass  # loop already closed during shutdown

    # -- loop-thread callbacks ---------------------------------------------- #

    def _resolve(self, corr: int, status: int, response: bytes) -> None:
        future = self._pending.pop(corr, None)
        if future is not None:
            if self._inflight is not None:
                self._inflight.dec()
            if not future.done():
                future.set_result((status, response))

    def _fail_pending(self, exc: Exception) -> None:
        """Connection death: every in-flight future gets the transport
        error, so its request can fail over to the next replica."""
        self._broken = exc
        pending = list(self._pending.values())
        self._pending.clear()
        if pending and self._inflight is not None:
            self._inflight.dec(len(pending))
        for future in pending:
            if not future.done():
                future.set_exception(exc)

    def close(self) -> None:
        self._endpoint.close()


class _PendingWindow:
    """One shard's accumulating batch of one kind (register or lookup)."""

    __slots__ = ("entries", "timer")

    def __init__(self) -> None:
        #: entry key (serialized taint bytes, or int GID) → result future.
        self.entries: OrderedDict = OrderedDict()
        self.timer: Optional[asyncio.TimerHandle] = None


class _ShardChannel:
    """Per-shard connection management + replica failover.

    State is event-loop-confined; the replica list and active index are
    shared with the owning client so HA widening
    (:class:`~repro.core.ha.AsyncFailoverTaintMapClient`) and
    ``active_address_for`` introspection keep working unchanged.
    """

    def __init__(self, transport: "AsyncTaintMapTransport", shard: int):
        self._transport = transport
        self._shard = shard
        self._connection: Optional[_MuxConnection] = None
        self._connect_lock = asyncio.Lock()

    async def _connected(self) -> _MuxConnection:
        if self._connection is not None and not self._connection.broken:
            return self._connection
        async with self._connect_lock:
            if self._connection is not None and not self._connection.broken:
                return self._connection
            client = self._transport.client
            address = client._shard_replicas[self._shard][
                client._active[self._shard]
            ]
            loop = self._transport.loop
            endpoint = await loop.run_in_executor(
                None, self._transport._connect, address
            )
            self._connection = _MuxConnection(
                loop, endpoint, self._transport._inflight_child
            )
            return self._connection

    def _rotate(self, observed_active: int) -> None:
        """Fail over to the shard's next replica (no-op if a concurrent
        request already rotated past ``observed_active``); always drop
        the broken connection."""
        client = self._transport.client
        stale, self._connection = self._connection, None
        if client._active[self._shard] == observed_active:
            client._active[self._shard] = (observed_active + 1) % len(
                client._shard_replicas[self._shard]
            )
        if stale is not None:
            try:
                stale.close()
            except Exception:
                client.stats.bump("close_errors")

    async def roundtrip(self, op: int, payload: bytes) -> tuple[int, bytes]:
        """One request with per-shard replica failover.  Transport
        errors rotate and retry (idempotent ops make the retry safe);
        protocol-level statuses are returned to the caller."""
        client = self._transport.client
        replicas = client._shard_replicas[self._shard]
        last_error: Optional[Exception] = None
        for _ in range(len(replicas)):
            observed_active = client._active[self._shard]
            started = time.perf_counter()
            try:
                connection = await self._connected()
                status, response = await connection.request(op, payload)
            except TRANSPORT_ERRORS as exc:
                last_error = exc
                self._rotate(observed_active)
                continue
            with client.stats._lock:
                client.requests_sent += 1
            client._observe_rpc(op, time.perf_counter() - started)
            return status, response
        if len(replicas) == 1:
            raise last_error  # single replica: surface the transport error
        raise TaintMapError(f"all taint map replicas unreachable: {last_error}")

    def close(self) -> None:
        connection, self._connection = self._connection, None
        if connection is not None:
            try:
                connection.close()
            except Exception:
                self._transport.client.stats.bump("close_errors")


class AsyncTaintMapTransport:
    """The event-loop half of :class:`AsyncTaintMapClient`.

    ``submit``/``submit_many`` are the sync bridge: they accept the
    pooled client's ``(shard, op, payload)`` request shape, route the
    four map ops through the coalescing windows, and return response
    payloads in exactly the sync protocol's formats — so the caching
    and batching logic of :class:`~repro.core.taintmap.TaintMapClient`
    runs unmodified on top.
    """

    def __init__(
        self,
        client: TaintMapClient,
        coalesce_window_us: float = DEFAULT_WINDOW_US,
        max_batch: int = DEFAULT_MAX_BATCH,
    ):
        if max_batch < 1:
            raise TaintMapError(f"max_batch must be >= 1, got {max_batch}")
        self.client = client
        self.coalesce_window_us = max(float(coalesce_window_us), 0.0)
        self.max_batch = max_batch
        # Coalescing/in-flight telemetry on the owning node's registry
        # (None for bare test nodes).  Families and their reason
        # children are pre-declared so /metrics always exposes them.
        self._flush_reason = None
        self._window_entries = None
        self._inflight_child = None
        metrics = getattr(client, "_metrics", None)
        if metrics is not None:
            self._flush_reason = metrics.counter(
                "dista_coalesce_flush_total",
                "Coalescing-window flushes by trigger (size vs timer).",
                ("reason",),
            )
            for reason in ("size", "timer"):
                self._flush_reason.labels(reason=reason)
            self._window_entries = metrics.histogram(
                "dista_coalesce_window_entries",
                "Entries per flushed coalescing window.",
                (),
                lowest=1.0,
                buckets=16,
            )
            self._inflight_child = metrics.gauge(
                "dista_taintmap_inflight_requests",
                "Requests in flight on the multiplexed Taint Map connections.",
            ).labels()
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._lifecycle_lock = threading.Lock()
        self._channels: list[_ShardChannel] = []
        self._windows: list[tuple[_PendingWindow, _PendingWindow]] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------- #

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lifecycle_lock:
            if self._closed:
                raise TaintMapError("async taint map transport is closed")
            if self.loop is None:
                self.loop = asyncio.new_event_loop()
                shard_count = len(self.client._shard_replicas)
                self._channels = [
                    _ShardChannel(self, shard) for shard in range(shard_count)
                ]
                self._windows = [
                    (_PendingWindow(), _PendingWindow())
                    for _ in range(shard_count)
                ]
                self._thread = threading.Thread(
                    target=self.loop.run_forever, name="taintmap-aio", daemon=True
                )
                self._thread.start()
            return self.loop

    def close(self) -> None:
        with self._lifecycle_lock:
            self._closed = True
            loop, self.loop = self.loop, None
            thread, self._thread = self._thread, None
            channels, self._channels = self._channels, []
            windows, self._windows = self._windows, []
        if loop is None:
            return

        def shutdown() -> None:
            closed = TaintMapError("async taint map transport is closed")
            for register_window, lookup_window in windows:
                for window in (register_window, lookup_window):
                    if window.timer is not None:
                        window.timer.cancel()
                        window.timer = None
                    for future in window.entries.values():
                        if not future.done():
                            future.set_exception(closed)
                    window.entries.clear()
            for channel in channels:
                channel.close()
            loop.stop()

        try:
            loop.call_soon_threadsafe(shutdown)
        except RuntimeError:
            return
        if thread is not None:
            thread.join(timeout=10)
        if not loop.is_running():
            loop.close()

    def _connect(self, address: Address) -> TcpEndpoint:
        """Blocking connect + OP_MUX_HELLO upgrade (runs on executor)."""
        node = self.client._node
        endpoint = node.kernel.connect(node.ip, address)
        try:
            _send_frame(endpoint, bytes([OP_MUX_HELLO]), b"")
            status = _recv_exact(endpoint, 1)[0]
            (length,) = struct.unpack(">I", _recv_exact(endpoint, 4))
            if length:
                _recv_exact(endpoint, length)
            if status != STATUS_OK:
                raise TaintMapError(
                    f"taint map refused multiplexed upgrade (status {status})"
                )
        except BaseException:
            endpoint.close()
            raise
        return endpoint

    # -- sync bridge -------------------------------------------------------- #

    def submit(self, shard: int, op: int, payload: bytes) -> bytes:
        loop = self._ensure_loop()
        return asyncio.run_coroutine_threadsafe(
            self._dispatch(shard, op, payload), loop
        ).result()

    def submit_many(self, calls: Sequence[tuple[int, int, bytes]]) -> list[bytes]:
        loop = self._ensure_loop()

        async def run_all() -> list[bytes]:
            return await asyncio.gather(
                *(self._dispatch(shard, op, payload) for shard, op, payload in calls)
            )

        return asyncio.run_coroutine_threadsafe(run_all(), loop).result()

    # -- op dispatch (loop thread) ------------------------------------------- #

    async def _dispatch(self, shard: int, op: int, payload: bytes) -> bytes:
        """Route one sync-protocol request through the coalescing
        windows, returning the response payload the sync protocol
        would have produced."""
        if op == OP_REGISTER:
            gids = await self._coalesce(shard, _REGISTER, [bytes(payload)])
            return struct.pack(">I", gids[0])
        if op == OP_REGISTER_MANY:
            entries = _split_batch_register(payload)
            gids = await self._coalesce(shard, _REGISTER, entries)
            return struct.pack(f">{len(gids)}I", *gids)
        if op == OP_LOOKUP:
            (gid,) = struct.unpack(">I", payload)
            values = await self._coalesce(shard, _LOOKUP, [gid])
            return values[0]
        if op == OP_LOOKUP_MANY:
            (count,) = struct.unpack(">H", payload[:2])
            gids = list(struct.unpack(f">{count}I", payload[2:]))
            values = await self._coalesce(shard, _LOOKUP, gids)
            return b"".join(
                struct.pack(">I", len(value)) + value for value in values
            )
        # Unknown/extension op: pass through un-coalesced.
        status, response = await self._channels[shard].roundtrip(op, payload)
        self._check_status(status)
        return response

    @staticmethod
    def _check_status(status: int) -> None:
        if status == STATUS_UNKNOWN_GID:
            raise TaintMapError("unknown Global ID")
        if status != STATUS_OK:
            raise TaintMapError(f"taint map rejected request (status {status})")

    # -- coalescing windows (loop thread) ------------------------------------- #

    async def _coalesce(self, shard: int, kind: int, keys: Sequence) -> list:
        """Enqueue ``keys`` into the shard's pending window and await
        their results.  All of one call's keys enter the window
        atomically (the loop is single-threaded), preserving the
        one-round-trip-per-shard property of a single batched call even
        with a zero-length window."""
        window = self._windows[shard][kind]
        futures = []
        for key in keys:
            future = window.entries.get(key)
            if future is None:
                future = self.loop.create_future()
                window.entries[key] = future
            futures.append(future)
        if len(window.entries) >= self.max_batch:
            self._flush_now(shard, kind, "size")
        elif window.timer is None:
            delay = self.coalesce_window_us / 1e6
            window.timer = self.loop.call_later(
                delay, self._flush_now, shard, kind, "timer"
            )
        results = await asyncio.gather(*futures, return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    def _flush_now(self, shard: int, kind: int, reason: str = "size") -> None:
        window = self._windows[shard][kind]
        if window.timer is not None:
            window.timer.cancel()
            window.timer = None
        if not window.entries:
            return
        entries, window.entries = window.entries, OrderedDict()
        if self._flush_reason is not None:
            self._flush_reason.labels(reason=reason).inc()
            self._window_entries.observe(len(entries))
        self.loop.create_task(self._flush(shard, kind, entries))

    async def _flush(self, shard: int, kind: int, entries: OrderedDict) -> None:
        """One wire round-trip for an accumulated window; resolves every
        entry future (out of order relative to other flushes)."""
        keys = list(entries)
        try:
            if kind == _REGISTER:
                status, response = await self._channels[shard].roundtrip(
                    OP_REGISTER_MANY, _pack_batch_register(keys)
                )
                self._check_status(status)
                gids = struct.unpack(f">{len(keys)}I", response)
                for key, gid in zip(keys, gids):
                    future = entries[key]
                    if not future.done():
                        future.set_result(gid)
                return
            status, response = await self._channels[shard].roundtrip(
                OP_LOOKUP_MANY, struct.pack(f">H{len(keys)}I", len(keys), *keys)
            )
            if status == STATUS_UNKNOWN_GID and len(response) == 4:
                # The server names the offending GID: fail that entry
                # alone and re-flush the remainder (one extra
                # round-trip) instead of failing the whole window.
                (bad,) = struct.unpack(">I", response)
                future = entries.pop(bad, None)
                if future is not None:
                    if not future.done():
                        future.set_exception(TaintMapError("unknown Global ID"))
                    if entries:
                        await self._flush(shard, kind, entries)
                    return
            self._check_status(status)
            serialized = _split_batch_lookup_response(response, len(keys))
            for key, value in zip(keys, serialized):
                future = entries[key]
                if not future.done():
                    future.set_result(value)
        except Exception as exc:
            for future in entries.values():
                if not future.done():
                    future.set_exception(exc)


class AsyncTaintMapClient(TaintMapClient):
    """Drop-in :class:`~repro.core.taintmap.TaintMapClient` whose
    transport is one multiplexed connection per shard plus cross-message
    coalescing.  The sync ``gid_for``/``gids_for``/``taint_for``/
    ``taints_for`` API, both-direction caches, shard routing, and HA
    failover semantics are all inherited — only the two request-path
    hooks (``_request`` / ``_request_by_shard``) change.
    """

    transport_name = "async"

    def __init__(
        self,
        node,
        address: Union[Address, Sequence[Address]],
        cache_enabled: bool = True,
        cache_capacity: Optional[int] = None,
        coalesce_window_us: float = DEFAULT_WINDOW_US,
        max_batch: int = DEFAULT_MAX_BATCH,
    ):
        super().__init__(node, address, cache_enabled, cache_capacity)
        self.transport = AsyncTaintMapTransport(
            self, coalesce_window_us, max_batch
        )

    def _request(self, op: int, payload: bytes, shard: int = 0) -> bytes:
        return self.transport.submit(shard, op, payload)

    def _request_by_shard(
        self, calls: Sequence[tuple[int, int, bytes]]
    ) -> list[bytes]:
        return self.transport.submit_many(calls)

    def close(self) -> None:
        self.transport.close()
        super().close()
