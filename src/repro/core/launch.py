"""Launch-script modelling for the usability evaluation (§V-E).

The paper measures usability as *lines changed in launch scripts*: on
average 10 LOC per system, zero source-code modifications.  We model each
system's stock launch script and the DisTA-enabling edit, so the
usability table can be regenerated from data rather than asserted.

The canonical edit is the one shown for ZooKeeper's ``zkEnv.sh``::

    JAVA="$INST_JAVA_HOME/bin/java"
    SERVER_JVMFLAGS="-Xbootclasspath/a:DisTA.jar -javaagent:DisTA.jar=..."
    CLIENT_JVMFLAGS="-Xbootclasspath/a:DisTA.jar -javaagent:DisTA.jar=..."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LaunchScript:
    """A system launch script: original lines + DisTA modifications."""

    name: str
    original_lines: list[str]
    modified_lines: dict[int, str] = field(default_factory=dict)
    added_lines: list[str] = field(default_factory=list)

    def modify(self, index: int, new_line: str) -> None:
        if not 0 <= index < len(self.original_lines):
            raise IndexError(f"{self.name}: no line {index}")
        self.modified_lines[index] = new_line

    def add(self, line: str) -> None:
        self.added_lines.append(line)

    @property
    def changed_loc(self) -> int:
        """LOC touched to enable DisTA (the paper's usability metric)."""
        return len(self.modified_lines) + len(self.added_lines)

    def render(self) -> str:
        lines = [
            self.modified_lines.get(i, line) for i, line in enumerate(self.original_lines)
        ]
        return "\n".join(lines + self.added_lines)


_JVMFLAGS = '"-Xbootclasspath/a:DisTA.jar -javaagent:DisTA.jar=taintSources=sources.spec,taintSinks=sinks.spec"'


def _script(name: str, stock: list[str], edits: list[tuple[int, str]], adds: list[str]) -> LaunchScript:
    script = LaunchScript(name, stock)
    for index, line in edits:
        script.modify(index, line)
    for line in adds:
        script.add(line)
    return script


def zookeeper_launch() -> LaunchScript:
    """zkEnv.sh: 3 LOC, the example the paper prints."""
    return _script(
        "zookeeper/bin/zkEnv.sh",
        [
            "#!/usr/bin/env bash",
            'ZOOBINDIR="${ZOOBINDIR:-/usr/bin}"',
            'JAVA="$JAVA_HOME/bin/java"',
            'SERVER_JVMFLAGS=""',
            'CLIENT_JVMFLAGS=""',
            'ZOO_LOG_DIR="$ZOOKEEPER_PREFIX/logs"',
        ],
        [
            (2, 'JAVA="$INST_JAVA_HOME/bin/java"'),
            (3, f"SERVER_JVMFLAGS={_JVMFLAGS}"),
            (4, f"CLIENT_JVMFLAGS={_JVMFLAGS}"),
        ],
        [],
    )


def mapreduce_launch() -> LaunchScript:
    """hadoop-env.sh + yarn-env.sh: RM, NM, container and client JVMs."""
    return _script(
        "hadoop/etc/hadoop/hadoop-env.sh",
        [
            "#!/usr/bin/env bash",
            "export JAVA_HOME=${JAVA_HOME}",
            'export HADOOP_OPTS="$HADOOP_OPTS"',
            'export YARN_RESOURCEMANAGER_OPTS=""',
            'export YARN_NODEMANAGER_OPTS=""',
            'export HADOOP_CLIENT_OPTS=""',
            "export HADOOP_LOG_DIR=${HADOOP_LOG_DIR}",
        ],
        [
            (1, "export JAVA_HOME=${INST_JAVA_HOME}"),
            (2, f'export HADOOP_OPTS="$HADOOP_OPTS "{_JVMFLAGS}'),
            (3, f"export YARN_RESOURCEMANAGER_OPTS={_JVMFLAGS}"),
            (4, f"export YARN_NODEMANAGER_OPTS={_JVMFLAGS}"),
            (5, f"export HADOOP_CLIENT_OPTS={_JVMFLAGS}"),
        ],
        [f"export MAPRED_CHILD_JAVA_OPTS={_JVMFLAGS}"],
    )


def activemq_launch() -> LaunchScript:
    return _script(
        "activemq/bin/env",
        [
            "#!/bin/sh",
            'JAVA_HOME=""',
            'ACTIVEMQ_OPTS_MEMORY="-Xms64M -Xmx1G"',
            'ACTIVEMQ_OPTS="$ACTIVEMQ_OPTS_MEMORY"',
        ],
        [
            (1, 'JAVA_HOME="$INST_JAVA_HOME"'),
            (3, f'ACTIVEMQ_OPTS="$ACTIVEMQ_OPTS_MEMORY "{_JVMFLAGS}'),
        ],
        [f"ACTIVEMQ_CLIENT_OPTS={_JVMFLAGS}"],
    )


def rocketmq_launch() -> LaunchScript:
    return _script(
        "rocketmq/bin/runserver.sh",
        [
            "#!/bin/bash",
            "export JAVA_HOME",
            'export JAVA="$JAVA_HOME/bin/java"',
            'JAVA_OPT="${JAVA_OPT} -server"',
        ],
        [
            (1, "export JAVA_HOME=$INST_JAVA_HOME"),
            (2, 'export JAVA="$INST_JAVA_HOME/bin/java"'),
            (3, f'JAVA_OPT="${{JAVA_OPT}} -server "{_JVMFLAGS}'),
        ],
        [f"JAVA_OPT_CLIENT={_JVMFLAGS}"],
    )


def hbase_launch() -> LaunchScript:
    """hbase-env.sh: master, regionservers, embedded ZK, client."""
    return _script(
        "hbase/conf/hbase-env.sh",
        [
            "#!/usr/bin/env bash",
            "export JAVA_HOME=${JAVA_HOME}",
            'export HBASE_OPTS="-XX:+UseConcMarkSweepGC"',
            'export HBASE_MASTER_OPTS=""',
            'export HBASE_REGIONSERVER_OPTS=""',
            "export HBASE_MANAGES_ZK=true",
        ],
        [
            (1, "export JAVA_HOME=${INST_JAVA_HOME}"),
            (2, f'export HBASE_OPTS="-XX:+UseConcMarkSweepGC "{_JVMFLAGS}'),
            (3, f"export HBASE_MASTER_OPTS={_JVMFLAGS}"),
            (4, f"export HBASE_REGIONSERVER_OPTS={_JVMFLAGS}"),
        ],
        [f"export HBASE_ZOOKEEPER_OPTS={_JVMFLAGS}", f"export HBASE_CLIENT_OPTS={_JVMFLAGS}"],
    )


def launch_cluster(
    mode,
    agent_argument: str = "",
    sources_text: str = "",
    sinks_text: str = "",
    name: str = "cluster",
):
    """Build a cluster the way a launch script would (§V-E end to end).

    Parses the ``-javaagent:DisTA.jar=<agent_argument>`` option string
    and the two spec files' contents, returning a ready
    :class:`~repro.runtime.cluster.Cluster` (not yet started).
    """
    from repro.core.config import AgentOptions, TaintSpec, parse_switch
    from repro.runtime.cluster import Cluster
    from repro.runtime.modes import Mode

    options = AgentOptions.parse(agent_argument)
    agent_options = {}
    if options.extras.get("gidCache") == "off":
        agent_options["cache_enabled"] = False
    if options.extras.get("granularity") == "message":
        agent_options["byte_granularity"] = False
    if "gidCacheCapacity" in options.extras:
        agent_options["cache_capacity"] = int(options.extras["gidCacheCapacity"])
    if "taintMapAsync" in options.extras:
        # Async is the default; taintMapAsync=off opts back into pooled.
        async_on = parse_switch(options.extras["taintMapAsync"], "taintMapAsync")
        agent_options["transport"] = "async" if async_on else "pooled"
    if "coalesceWindowUs" in options.extras:
        agent_options["coalesce_window_us"] = float(options.extras["coalesceWindowUs"])
    if "coalesceAdaptive" in options.extras:
        agent_options["coalesce_adaptive"] = parse_switch(
            options.extras["coalesceAdaptive"], "coalesceAdaptive"
        )
    if "taintMapDeadlineS" in options.extras:
        # 0 disables the per-request deadline entirely.
        agent_options["request_deadline_s"] = float(options.extras["taintMapDeadlineS"])
    if "coalesceMaxPending" in options.extras:
        agent_options["max_pending"] = int(options.extras["coalesceMaxPending"])
    if "coalesceBackpressure" in options.extras:
        agent_options["backpressure"] = options.extras["coalesceBackpressure"]
    if "overheadBudget" in options.extras:
        # overheadBudget=1.05 caps tracking overhead at 5% over baseline;
        # "unlimited"/"off" keeps full, unbudgeted tracking.
        from repro.core.agent import parse_overhead_budget

        agent_options["overhead_budget"] = parse_overhead_budget(
            options.extras["overheadBudget"]
        )
    if "taintSampleEvery" in options.extras:
        agent_options["sample_every"] = int(options.extras["taintSampleEvery"])
    if "budgetWarmStart" in options.extras:
        # budgetWarmStart=k or k:method+method — resume the budget
        # controller at a previous run's converged operating point
        # ('+' separates methods because extras split on commas).
        agent_options["budget_warm_start"] = options.extras["budgetWarmStart"]
    if "gidCacheAdmission" in options.extras:
        agent_options["cache_admission"] = parse_switch(
            options.extras["gidCacheAdmission"], "gidCacheAdmission"
        )
    # lineage=on enables flow-lineage capture: the Cluster builds a
    # bounded LineageStore (and a CrossingTrace to stitch from).
    lineage = None
    if "lineage" in options.extras:
        lineage = parse_switch(options.extras["lineage"], "lineage") or None
    # taintMapMinShards is the elastic spelling of the boot-time shard
    # count; taintMapShards stays as the fixed-fleet alias.
    taint_map_shards = int(
        options.extras.get(
            "taintMapMinShards", options.extras.get("taintMapShards", 1)
        )
    )
    taint_map_max_shards = None
    if "taintMapMaxShards" in options.extras:
        taint_map_max_shards = int(options.extras["taintMapMaxShards"])
    taint_map_durable = False
    if "taintMapDurable" in options.extras:
        taint_map_durable = parse_switch(
            options.extras["taintMapDurable"], "taintMapDurable"
        )
    taint_map_snapshot_every = None
    if "taintMapSnapshotEvery" in options.extras:
        taint_map_snapshot_every = int(options.extras["taintMapSnapshotEvery"])
    cluster = Cluster(
        mode,
        name=name,
        agent_options=agent_options,
        taint_map_shards=taint_map_shards,
        taint_map_max_shards=taint_map_max_shards,
        lineage=lineage,
        taint_map_durable=taint_map_durable,
        taint_map_snapshot_every=taint_map_snapshot_every,
    )
    if mode is not Mode.ORIGINAL:
        TaintSpec.from_texts(sources_text, sinks_text).apply(cluster)
    return cluster


def all_launch_scripts() -> dict[str, LaunchScript]:
    """Launch edits for the five evaluated systems (§V-E)."""
    return {
        "ZooKeeper": zookeeper_launch(),
        "MapReduce/Yarn": mapreduce_launch(),
        "ActiveMQ": activemq_launch(),
        "RocketMQ": rocketmq_launch(),
        "HBase+ZooKeeper": hbase_launch(),
    }


def average_changed_loc() -> float:
    scripts = all_launch_scripts()
    return sum(s.changed_loc for s in scripts.values()) / len(scripts)
