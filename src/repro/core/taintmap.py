"""The Taint Map service (paper §III-D, Fig. 9).

An independent process that every node can reach, keeping the bijection
*global taint ⇄ Global ID*.  It exists to solve two problems:

* **bandwidth** — a serialized taint is 200+ bytes and grows with its tag
  count; nodes transfer the fixed 4-byte Global ID instead and consult
  the map once per distinct taint (client-side caches make repeats free —
  Fig. 9's note that b2 needs no second request);
* **mismatched length** — fixed-width IDs let the receiver size its
  enlarged buffer exactly (see :mod:`repro.core.wire`).

The server runs on its own simulated node and speaks a tiny
request/response protocol over a **raw** kernel TCP connection — its own
traffic must not pass through instrumented JNI methods, both to avoid
recursion and to keep it out of the workload's overhead accounting.

As in the paper, this is the "simplest implementation" (202 LOC there):
a single-point map, replaceable by ZooKeeper/etcd in production.  The
paper concedes (§V-F, §VI) that a single point bounds cluster
throughput; this module therefore also supports **sharding**: N servers,
each owning a partition of the taint-key space (consistent hash) and a
partition of the Global-ID namespace (the shard index lives in the high
:data:`GID_SHARD_BITS` bits of the 4-byte GID).  A one-shard deployment
is bit-for-bit identical to the unsharded protocol — shard 0 allocates
GIDs 1, 2, 3, … and the wire format never changes.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
import threading
import time
from collections import OrderedDict
from typing import Optional, Sequence, Union

from repro.core import durability
from repro.errors import (
    TaintMapError,
    TaintMapExhaustedError,
    TaintMapStaleRingError,
)
from repro.obs.registry import MetricsRegistry
from repro.runtime.kernel import Address, SimKernel, TcpEndpoint
from repro.taint.tags import LocalId, TaintTag
from repro.taint.tree import Taint, TaintTree

OP_REGISTER = 1
OP_LOOKUP = 2
# 3 is OP_SYNC (repro.core.ha) — the HA replication op shares this
# opcode namespace through the Standby's ``_handle`` fallthrough.
OP_REGISTER_MANY = 4
OP_LOOKUP_MANY = 5
#: Connection upgrade: the first frame of an async multiplexed client
#: (:mod:`repro.core.aio_transport`).  After the server acknowledges
#: with ``STATUS_OK``, every subsequent frame on the connection carries
#: a 4-byte correlation-id prefix in front of the *unchanged* sync frame
#: bytes, and responses may be delivered out of order.
OP_MUX_HELLO = 6
#: Elastic resharding control plane (:mod:`repro.core.elastic`).  A
#: ``RING_UPDATE`` carries an encoded :class:`ShardRing`; the receiving
#: shard atomically flips to the new epoch.  ``HANDOFF_BEGIN/CHUNK/END``
#: stream reverse-lookup/dedup state (``(gid, serialized taint)`` pairs)
#: from an old shard to the key's new owner — the GID itself is never
#: rewritten, so migration is invisible on the data-plane wire.
OP_RING_UPDATE = 7
OP_HANDOFF_BEGIN = 8
OP_HANDOFF_CHUNK = 9
OP_HANDOFF_END = 10

STATUS_OK = 0
STATUS_UNKNOWN_GID = 1
STATUS_BAD_REQUEST = 2
#: The registration was routed with a superseded hash ring.  The reply
#: payload carries the server's current encoded :class:`ShardRing` (or
#: is empty when a standalone server has no ring to share); the client
#: adopts it and re-routes.  Semantic, never a failover trigger.
STATUS_STALE_RING = 3
#: The shard ran out of Global-ID sequence numbers.  Semantic, never a
#: failover trigger: the replica is healthy and its standby replicates
#: the same exhausted counter, so rotating or retrying cannot help.
#: Clients surface it as
#: :class:`~repro.errors.TaintMapExhaustedError`; the per-shard
#: ``dista_gid_headroom`` gauge is the advance warning.
STATUS_GID_EXHAUSTED = 4

#: Human-readable op names for telemetry labels (op 3 is OP_SYNC in
#: :mod:`repro.core.ha`, which shares this opcode namespace).
OP_NAMES = {
    OP_REGISTER: "register",
    OP_LOOKUP: "lookup",
    3: "sync",
    OP_REGISTER_MANY: "register_many",
    OP_LOOKUP_MANY: "lookup_many",
    OP_MUX_HELLO: "mux_hello",
    OP_RING_UPDATE: "ring_update",
    OP_HANDOFF_BEGIN: "handoff_begin",
    OP_HANDOFF_CHUNK: "handoff_chunk",
    OP_HANDOFF_END: "handoff_end",
}


def op_name(op: int) -> str:
    return OP_NAMES.get(op, f"op{op}")

_KIND_STR = ord("s")
_KIND_INT = ord("i")
_KIND_BYTES = ord("b")

# --------------------------------------------------------------------- #
# Global-ID namespace partitioning
# --------------------------------------------------------------------- #

#: High bits of the 4-byte Global ID naming the owning shard.  Shard 0's
#: IDs are plain 1, 2, 3, … — a single-shard map emits exactly the bytes
#: the unsharded protocol did, and GID 0 (the empty taint) never belongs
#: to any shard.
GID_SHARD_BITS = 4
GID_SHARD_SHIFT = 32 - GID_SHARD_BITS
GID_SEQ_MASK = (1 << GID_SHARD_SHIFT) - 1
MAX_SHARDS = 1 << GID_SHARD_BITS

#: Transport-level failures (vs protocol-level STATUS_* errors).  HA
#: clients fail over on these; semantic errors must never fail over.
#: :class:`~repro.errors.TaintMapTransportError` is covered through its
#: ``ConnectionError`` base.
TRANSPORT_ERRORS = (ConnectionError, EOFError, OSError, TimeoutError)

#: Hard protocol ceiling on entries per ``OP_REGISTER_MANY`` /
#: ``OP_LOOKUP_MANY`` frame: both batch payloads wire-encode their entry
#: count as an unsigned 16-bit integer (``>H``).  Larger logical batches
#: must be chunked into multiple frames — each frame byte-identical to
#: the classic protocol — never packed into one oversized frame.
PROTOCOL_MAX_BATCH = 0xFFFF


def make_gid(shard: int, seq: int) -> int:
    """Compose a Global ID from a shard index and a per-shard sequence."""
    return (shard << GID_SHARD_SHIFT) | seq


def gid_shard(gid: int) -> int:
    """The shard that allocated (and can resolve) ``gid``."""
    return gid >> GID_SHARD_SHIFT


class ShardRouter:
    """Consistent-hash routing of taint keys onto shard indices.

    Every client and every server build the identical ring (SHA-256 over
    ``shard:<index>:<vnode>`` labels), so a taint registers on the same
    shard no matter which node first sees it — the property that keeps
    registration idempotent cluster-wide.  Lookups never consult the
    ring: a received GID carries its shard in its high bits.

    Rings are **versioned**: each scale-out bumps the ring ``epoch``,
    and epochs > 0 salt the vnode labels with the epoch so a scaled ring
    rebalances keys rather than replaying the day-one layout.  Epoch 0
    uses the original unsalted labels — a never-scaled deployment routes
    (and therefore frames) byte-identically to the pre-elastic protocol.
    """

    VNODES = 64

    #: Ring points are a pure function of (shard count, epoch, retired
    #: set), and every client/agent attach builds a router — memoize so the
    #: 64-vnode SHA-256 ring is hashed once per distinct ring, not once
    #: per client.  Keying on the count alone would serve a stale ring
    #: after a scale-out: a fresh epoch-0 4-shard cluster and a cluster
    #: scaled 1→4 (epoch 1) share a shard count but not a key layout.
    _RING_CACHE: dict = {}
    _RING_LOCK = threading.Lock()

    def __init__(self, shard_count: int, epoch: int = 0, retired=()):
        if not 1 <= shard_count <= MAX_SHARDS:
            raise TaintMapError(
                f"shard count {shard_count} outside 1..{MAX_SHARDS}"
            )
        if epoch < 0:
            raise TaintMapError(f"ring epoch must be >= 0, got {epoch}")
        retired = frozenset(int(index) for index in retired)
        if any(not 0 <= index < shard_count for index in retired):
            raise TaintMapError(
                f"retired shard indices {sorted(retired)} outside "
                f"0..{shard_count - 1}"
            )
        active = [index for index in range(shard_count) if index not in retired]
        if not active:
            raise TaintMapError("a ring needs at least one active shard")
        self.shard_count = shard_count
        self.epoch = epoch
        self.retired = retired
        # Retired (drained) shards keep their GID-namespace index — a
        # received GID still self-routes to the slot's forwarding
        # address — but own no keys: new registrations only ever land
        # on active shards.
        self._single = active[0] if len(active) == 1 else None
        # Never-drained rings keep the historical two-field cache key;
        # the retired set only joins the key when non-empty.
        cache_key = (
            (shard_count, epoch) if not retired
            else (shard_count, epoch, retired)
        )
        with self._RING_LOCK:
            cached = self._RING_CACHE.get(cache_key)
            if cached is None:
                points = []
                for shard in active:
                    for vnode in range(self.VNODES):
                        label = (
                            f"shard:{shard}:{vnode}"
                            if epoch == 0
                            else f"epoch:{epoch}:shard:{shard}:{vnode}"
                        )
                        digest = hashlib.sha256(label.encode()).digest()
                        points.append((int.from_bytes(digest[:8], "big"), shard))
                points.sort()
                cached = (
                    tuple(h for h, _ in points),
                    tuple(s for _, s in points),
                )
                self._RING_CACHE[cache_key] = cached
        self._hashes, self._shards = cached

    def shard_for_key(self, key: bytes) -> int:
        """Owning shard of a canonical :func:`taint_key`."""
        if self._single is not None:
            return self._single
        point = int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
        index = bisect.bisect_right(self._hashes, point) % len(self._hashes)
        return self._shards[index]


class ShardRing:
    """A versioned shard layout: ring epoch plus shard addresses.

    Shard *i*'s address is ``addresses[i]`` — the GID namespace index and
    the address-list index are the same thing, which is what keeps GID
    lookups self-routing across scale-outs (a GID allocated under any
    epoch resolves at ``addresses[gid_shard(gid)]`` forever; scale-out
    only ever *appends* addresses).  Instances are immutable; adopting a
    new ring is a pointer swap.
    """

    __slots__ = ("epoch", "addresses", "retired")

    def __init__(self, epoch: int, addresses: Sequence[Address], retired=()):
        if epoch < 0:
            raise TaintMapError(f"ring epoch must be >= 0, got {epoch}")
        if not 1 <= len(addresses) <= MAX_SHARDS:
            raise TaintMapError(
                f"ring with {len(addresses)} shards outside 1..{MAX_SHARDS}"
            )
        self.epoch = epoch
        self.addresses: tuple[Address, ...] = tuple(
            (str(ip), int(port)) for ip, port in addresses
        )
        #: GID-namespace indices drained by a scale-in.  A retired
        #: slot's address is its **forwarding address** (a surviving
        #: shard that adopted every GID the drained shard could
        #: resolve), so lookups self-routing by shard bits keep being
        #: answerable forever.  Retired indices are never reused —
        #: growth only ever appends fresh indices.
        self.retired = frozenset(int(index) for index in retired)
        if any(not 0 <= index < len(self.addresses) for index in self.retired):
            raise TaintMapError(
                f"retired shard indices {sorted(self.retired)} outside "
                f"0..{len(self.addresses) - 1}"
            )
        if len(self.retired) >= len(self.addresses):
            raise TaintMapError("a ring needs at least one active shard")

    @property
    def shard_count(self) -> int:
        return len(self.addresses)

    @property
    def active_shards(self) -> list[int]:
        return [
            index
            for index in range(len(self.addresses))
            if index not in self.retired
        ]

    def router(self) -> ShardRouter:
        return ShardRouter(len(self.addresses), self.epoch, self.retired)

    def grow(self, addresses: Sequence[Address]) -> "ShardRing":
        """The successor ring: epoch + 1, with ``addresses`` appended."""
        return ShardRing(
            self.epoch + 1, self.addresses + tuple(addresses), self.retired
        )

    def drain(self, index: int, forward: Optional[int] = None) -> "ShardRing":
        """The successor ring with shard ``index`` retired.

        ``forward`` names the surviving shard whose address takes over
        the drained slot (default: the lowest active index), so GIDs
        carrying the drained shard's bits keep resolving there.  Any
        previously retired slot that forwarded to the now-draining
        shard is re-pointed too — forwarding chains collapse to one hop.
        """
        if not 0 <= index < len(self.addresses) or index in self.retired:
            raise TaintMapError(f"shard {index} is not an active shard")
        active = [i for i in self.active_shards if i != index]
        if not active:
            raise TaintMapError("cannot drain the last active shard")
        if forward is None:
            forward = active[0]
        if forward not in active:
            raise TaintMapError(
                f"forwarding shard {forward} is not a surviving active shard"
            )
        drained_address = self.addresses[index]
        addresses = list(self.addresses)
        addresses[index] = self.addresses[forward]
        for slot in self.retired:
            if addresses[slot] == drained_address:
                addresses[slot] = self.addresses[forward]
        return ShardRing(self.epoch + 1, addresses, self.retired | {index})

    def encode(self) -> bytes:
        """``epoch:4 | count:2`` then per shard ``ip_len:1 | ip | port:2``.

        A ring with retired shards appends ``retired_count:2`` plus one
        index byte per retired shard; a never-drained ring appends
        nothing, staying byte-identical to the pre-drain encoding.
        """
        out = [struct.pack(">IH", self.epoch, len(self.addresses))]
        for ip, port in self.addresses:
            raw_ip = ip.encode("ascii")
            out.append(struct.pack(">B", len(raw_ip)) + raw_ip + struct.pack(">H", port))
        if self.retired:
            out.append(struct.pack(">H", len(self.retired)))
            out.append(bytes(sorted(self.retired)))
        return b"".join(out)

    @classmethod
    def decode(cls, raw: bytes) -> "ShardRing":
        try:
            epoch, count = struct.unpack(">IH", raw[:6])
            pos = 6
            addresses = []
            for _ in range(count):
                ip_len = raw[pos]
                pos += 1
                ip = raw[pos : pos + ip_len].decode("ascii")
                pos += ip_len
                (port,) = struct.unpack(">H", raw[pos : pos + 2])
                pos += 2
                addresses.append((ip, port))
            retired: frozenset[int] = frozenset()
            # A retired section is at least count:2 + one index byte;
            # anything shorter is trailing garbage, not a section.
            if len(raw) - pos >= 3:
                (retired_count,) = struct.unpack(">H", raw[pos : pos + 2])
                pos += 2
                retired = frozenset(raw[pos : pos + retired_count])
                if len(retired) != retired_count:
                    raise TaintMapError("truncated retired-shard section")
                pos += retired_count
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise TaintMapError(f"malformed ring encoding: {exc!r}") from exc
        if pos != len(raw):
            raise TaintMapError(f"trailing bytes in ring encoding ({len(raw) - pos})")
        return cls(epoch, addresses, retired)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShardRing)
            and self.epoch == other.epoch
            and self.addresses == other.addresses
            and self.retired == other.retired
        )

    def __repr__(self) -> str:
        drained = f", retired={sorted(self.retired)}" if self.retired else ""
        return f"ShardRing(epoch={self.epoch}, shards={len(self.addresses)}{drained})"


# --------------------------------------------------------------------- #
# Taint (tag set) serialization
# --------------------------------------------------------------------- #


def _encode_tag_value(value) -> tuple[int, bytes]:
    if isinstance(value, str):
        return _KIND_STR, value.encode("utf-8")
    if isinstance(value, bool):
        raise TaintMapError("boolean tag values are not supported")
    if isinstance(value, int):
        try:
            return _KIND_INT, struct.pack(">q", value)
        except struct.error as exc:
            raise TaintMapError(f"integer tag {value} exceeds 64 bits") from exc
    if isinstance(value, (bytes, bytearray)):
        return _KIND_BYTES, bytes(value)
    raise TaintMapError(
        f"tag value of type {type(value).__name__} is not wire-serializable"
    )


def _decode_tag_value(kind: int, payload: bytes):
    if kind == _KIND_STR:
        return payload.decode("utf-8")
    if kind == _KIND_INT:
        return struct.unpack(">q", payload)[0]
    if kind == _KIND_BYTES:
        return payload
    raise TaintMapError(f"unknown tag value kind {kind}")


def serialize_tags(tags: frozenset[TaintTag]) -> bytes:
    """Canonical serialization of a tag set (a *global taint*)."""
    records = []
    for tag in tags:
        kind, payload = _encode_tag_value(tag.tag)
        ip = tag.local_id.ip.encode("ascii")
        records.append(
            struct.pack(">B", len(ip))
            + ip
            + struct.pack(">IIB H", tag.local_id.pid, tag.global_id, kind, len(payload))
            + payload
        )
    records.sort()
    return struct.pack(">H", len(records)) + b"".join(records)


def taint_key(tags: frozenset[TaintTag]) -> bytes:
    """Canonical identity of a taint, ignoring per-node GlobalID fields.

    Length-prefixed structural encoding — two distinct tag sets can never
    collide, and the key does not depend on ``repr`` formatting of the
    tag values (bytes vs str vs int all encode through their wire kinds).
    """
    records = []
    for tag in tags:
        kind, payload = _encode_tag_value(tag.tag)
        ip = tag.local_id.ip.encode("ascii")
        records.append(
            struct.pack(">B", len(ip))
            + ip
            + struct.pack(">IBI", tag.local_id.pid, kind, len(payload))
            + payload
        )
    records.sort()
    return struct.pack(">H", len(records)) + b"".join(records)


def deserialize_tags(raw: bytes) -> list[TaintTag]:
    (count,) = struct.unpack(">H", raw[:2])
    pos = 2
    tags = []
    for _ in range(count):
        ip_len = raw[pos]
        pos += 1
        ip = raw[pos : pos + ip_len].decode("ascii")
        pos += ip_len
        pid, global_id, kind, payload_len = struct.unpack(">IIB H", raw[pos : pos + 11])
        pos += 11
        payload = raw[pos : pos + payload_len]
        pos += payload_len
        tags.append(
            TaintTag(_decode_tag_value(kind, payload), LocalId(ip, pid), global_id=global_id)
        )
    if pos != len(raw):
        raise TaintMapError(f"trailing bytes in serialized taint ({len(raw) - pos})")
    return tags


# --------------------------------------------------------------------- #
# Framing helpers (shared by client and server)
# --------------------------------------------------------------------- #


def _send_frame(endpoint: TcpEndpoint, head: bytes, payload: bytes) -> None:
    endpoint.send_all(head + struct.pack(">I", len(payload)) + payload)


def _recv_exact(endpoint: TcpEndpoint, n: int) -> bytes:
    out = bytearray()
    while len(out) < n:
        chunk = endpoint.recv(n - len(out))
        if not chunk:
            # Transport-level failure (distinct from protocol errors, so
            # HA clients know the replica itself is gone).
            from repro.errors import PipeClosed

            raise PipeClosed("taint map connection closed mid-frame")
        out.extend(chunk)
    return bytes(out)


def _pack_batch_register(entries: Sequence[bytes]) -> bytes:
    """``OP_REGISTER_MANY`` payload: count, then length-prefixed taints."""
    if len(entries) > PROTOCOL_MAX_BATCH:
        # A clear error instead of an opaque struct.error: callers are
        # expected to chunk at the protocol limit before packing.
        raise TaintMapError(
            f"batch of {len(entries)} entries exceeds the "
            f"{PROTOCOL_MAX_BATCH}-entry protocol limit (16-bit count)"
        )
    return struct.pack(">H", len(entries)) + b"".join(
        struct.pack(">I", len(entry)) + entry for entry in entries
    )


def _pack_batch_lookup(gids: Sequence[int]) -> bytes:
    """``OP_LOOKUP_MANY`` payload: count, then the 4-byte GIDs."""
    if len(gids) > PROTOCOL_MAX_BATCH:
        raise TaintMapError(
            f"batch of {len(gids)} GIDs exceeds the "
            f"{PROTOCOL_MAX_BATCH}-entry protocol limit (16-bit count)"
        )
    return struct.pack(f">H{len(gids)}I", len(gids), *gids)


def _protocol_chunks(items: Sequence) -> list:
    """Split a logical batch at the 16-bit wire-count ceiling."""
    if len(items) <= PROTOCOL_MAX_BATCH:
        return [items]
    return [
        items[start : start + PROTOCOL_MAX_BATCH]
        for start in range(0, len(items), PROTOCOL_MAX_BATCH)
    ]


def _pack_handoff_chunk(entries: Sequence[tuple[int, bytes]]) -> bytes:
    """``OP_HANDOFF_CHUNK`` payload: count, then ``gid:4 | len:4 | taint``."""
    if len(entries) > PROTOCOL_MAX_BATCH:
        raise TaintMapError(
            f"handoff chunk of {len(entries)} entries exceeds the "
            f"{PROTOCOL_MAX_BATCH}-entry protocol limit (16-bit count)"
        )
    return struct.pack(">H", len(entries)) + b"".join(
        struct.pack(">II", gid, len(serialized)) + serialized
        for gid, serialized in entries
    )


def _split_handoff_chunk(payload: bytes) -> list[tuple[int, bytes]]:
    (count,) = struct.unpack(">H", payload[:2])
    pos = 2
    entries = []
    for _ in range(count):
        gid, length = struct.unpack(">II", payload[pos : pos + 8])
        pos += 8
        entries.append((gid, payload[pos : pos + length]))
        pos += length
    if pos != len(payload):
        raise TaintMapError(f"trailing bytes in handoff chunk ({len(payload) - pos})")
    return entries


def _split_batch_register(payload: bytes) -> list[bytes]:
    (count,) = struct.unpack(">H", payload[:2])
    pos = 2
    entries = []
    for _ in range(count):
        (length,) = struct.unpack(">I", payload[pos : pos + 4])
        pos += 4
        entries.append(payload[pos : pos + length])
        pos += length
    if pos != len(payload):
        raise TaintMapError(f"trailing bytes in batch register ({len(payload) - pos})")
    return entries


def _split_batch_lookup_response(raw: bytes, count: int) -> list[bytes]:
    """``OP_LOOKUP_MANY`` response: one length-prefixed taint per GID."""
    pos = 0
    out = []
    for _ in range(count):
        (length,) = struct.unpack(">I", raw[pos : pos + 4])
        pos += 4
        out.append(raw[pos : pos + length])
        pos += length
    if pos != len(raw):
        raise TaintMapError(f"trailing bytes in batch lookup ({len(raw) - pos})")
    return out


class TaintMapStats:
    """Taint Map counters (feed the §V-F scalability analysis).

    Servers fill the request/population counters; clients fill the
    cache counters (hits/misses/evictions of ``_gid_cache`` /
    ``_taint_cache``).  One snapshot shape for both keeps aggregation
    across shards trivial.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.register_requests = 0
        self.lookup_requests = 0
        self.register_entries = 0
        self.lookup_entries = 0
        self.global_taints = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.cache_admission_rejections = 0
        self.close_errors = 0
        self.stale_ring_retries = 0
        self.handoff_entries = 0
        self.wal_appends = 0
        self.wal_replayed = 0
        self.wal_snapshots = 0
        self.wal_torn_records = 0
        self.drain_entries = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "register_requests": self.register_requests,
                "lookup_requests": self.lookup_requests,
                "register_entries": self.register_entries,
                "lookup_entries": self.lookup_entries,
                "global_taints": self.global_taints,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_evictions": self.cache_evictions,
                "cache_admission_rejections": self.cache_admission_rejections,
                "close_errors": self.close_errors,
                "stale_ring_retries": self.stale_ring_retries,
                "handoff_entries": self.handoff_entries,
                "wal_appends": self.wal_appends,
                "wal_replayed": self.wal_replayed,
                "wal_snapshots": self.wal_snapshots,
                "wal_torn_records": self.wal_torn_records,
                "drain_entries": self.drain_entries,
            }

    @staticmethod
    def merge(*snapshots: dict) -> dict:
        """Key-wise sum of snapshot dicts — the multi-shard rollup
        callers used to hand-assemble in tests and benchmarks."""
        totals: dict = {}
        for snapshot in snapshots:
            for key, value in snapshot.items():
                totals[key] = totals.get(key, 0) + value
        return totals


#: Fraction of a bounded cache's capacity given to the probation
#: segment; the rest is the protected segment.
_PROBATION_FRACTION = 0.2

#: Counter ceiling of the TinyLFU sketch (4-bit counters).
_SKETCH_MAX = 15


class _FrequencySketch:
    """TinyLFU frequency sketch: a 4-bit count-min with periodic halving.

    Four hash rows over one table (double hashing from a single mixed
    64-bit hash), conservative increment, counters saturating at
    :data:`_SKETCH_MAX`.  After ``10 × table_size`` recorded accesses
    every counter is halved — the aging step that makes the estimate a
    *recent*-frequency, so yesterday's hot keys cannot squat in the
    cache forever.  Estimates are only ever compared against each other
    (candidate vs victim), so saturation and halving bias cancel out.
    """

    DEPTH = 4

    def __init__(self, capacity: int):
        size = 64
        while size < capacity * 2:
            size <<= 1
        self._mask = size - 1
        self._table = bytearray(size)
        self._additions = 0
        self._sample_period = size * 10

    def _rows(self, key) -> list[int]:
        mixed = (hash(key) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        h1 = mixed >> 32
        h2 = (mixed & 0xFFFFFFFF) | 1  # odd step walks the whole table
        return [(h1 + i * h2) & self._mask for i in range(self.DEPTH)]

    def record(self, key) -> None:
        rows = self._rows(key)
        lowest = min(self._table[slot] for slot in rows)
        if lowest < _SKETCH_MAX:
            # Conservative update: only the minimal counters move, which
            # keeps over-estimation (the count-min failure mode) small.
            for slot in rows:
                if self._table[slot] == lowest:
                    self._table[slot] = lowest + 1
        self._additions += 1
        if self._additions >= self._sample_period:
            self._halve()

    def estimate(self, key) -> int:
        return min(self._table[slot] for slot in self._rows(key))

    def _halve(self) -> None:
        table = self._table
        for i in range(len(table)):
            table[i] >>= 1
        self._additions >>= 1


class _LruCache:
    """Thread-safe mapping: unbounded, or bounded **segmented LRU**.

    ``capacity=None`` (the default) never evicts — preserving Fig. 9's
    "does not need to request a Global ID again" guarantee exactly.  A
    bounded cache trades that for bounded memory on long-lived nodes;
    evicted entries simply re-register/re-look-up on next use.

    The bounded policy is segmented (SLRU) rather than plain LRU for
    scan resistance: a GID burst from someone else's snapshot transfer
    is a one-pass key scan that plain LRU lets flush the whole cache.
    New entries land in a small **probation** segment
    (:data:`_PROBATION_FRACTION` of capacity); only a hit while on
    probation promotes to **protected**.  Scanned-once keys march
    through probation and fall out without ever touching the protected
    segment, so the re-referenced working set survives the scan.

    ``admission=True`` adds **TinyLFU admission** in front of probation:
    every ``get`` records the key in a :class:`_FrequencySketch`, and a
    *new* key is only inserted into a full cache when its estimated
    recent frequency beats the probation LRU victim it would evict.
    SLRU protects the working set from one-pass scans; TinyLFU targets
    *skewed* traffic, where plain recency lets a long tail of once-used
    keys continuously insert-and-evict through probation — the sketch
    bounces those at the door, keeping the churn off the lock-held fast
    path at hit-rate parity.  Off by default: admission refuses cold
    inserts, which changes eviction-count semantics for workloads that
    expect pure LRU behaviour.
    """

    def __init__(
        self,
        capacity: Optional[int],
        stats: TaintMapStats,
        admission: bool = False,
    ):
        if capacity is not None and capacity < 1:
            raise TaintMapError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._stats = stats
        self._lock = threading.Lock()
        # capacity=None keeps everything in _probation, never evicting.
        self._probation: OrderedDict = OrderedDict()
        self._protected: OrderedDict = OrderedDict()
        self._sketch = (
            _FrequencySketch(capacity) if admission and capacity is not None else None
        )
        if capacity is None:
            self._protected_cap = 0
        else:
            probation_cap = max(1, int(capacity * _PROBATION_FRACTION))
            self._protected_cap = max(0, capacity - probation_cap)

    def __len__(self) -> int:
        with self._lock:
            return len(self._probation) + len(self._protected)

    def clear(self) -> None:
        with self._lock:
            self._probation.clear()
            self._protected.clear()

    def get(self, key):
        with self._lock:
            if self._sketch is not None:
                self._sketch.record(key)
            if key in self._protected:
                self._protected.move_to_end(key)
                self._stats.bump("cache_hits")
                return self._protected[key]
            if key not in self._probation:
                self._stats.bump("cache_misses")
                return None
            self._stats.bump("cache_hits")
            if self._capacity is None:
                return self._probation[key]
            value = self._probation.pop(key)
            self._promote(key, value)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._protected:
                self._protected[key] = value
                self._protected.move_to_end(key)
                return
            if key not in self._probation and self._rejected_by_admission(key):
                return
            self._probation[key] = value
            if self._capacity is not None:
                self._probation.move_to_end(key)
                self._evict_over_capacity()

    def setdefault(self, key, value) -> None:
        """Insert without touching hit/miss accounting (secondary fills)."""
        with self._lock:
            if key in self._protected or key in self._probation:
                return
            if self._rejected_by_admission(key):
                return
            self._probation[key] = value
            if self._capacity is not None:
                self._evict_over_capacity()

    def _rejected_by_admission(self, key) -> bool:
        """TinyLFU gate for a *new* key: admitting into a full cache
        must be worth the eviction it forces.  Ties keep the incumbent —
        the candidate can always come back once it is provably hotter."""
        if self._sketch is None or len(self._probation) + len(self._protected) < self._capacity:
            return False
        if self._probation:
            victim = next(iter(self._probation))
        elif self._protected:
            victim = next(iter(self._protected))
        else:
            return False
        if self._sketch.estimate(key) > self._sketch.estimate(victim):
            return False
        self._stats.bump("cache_admission_rejections")
        return True

    def _promote(self, key, value) -> None:
        """Probation hit: move to protected, demoting its LRU entry back
        to probation MRU if the protected segment is full."""
        if self._protected_cap == 0:
            # Degenerate tiny capacity: everything stays on probation.
            self._probation[key] = value
            self._probation.move_to_end(key)
            return
        self._protected[key] = value
        self._protected.move_to_end(key)
        while len(self._protected) > self._protected_cap:
            demoted_key, demoted_value = self._protected.popitem(last=False)
            self._probation[demoted_key] = demoted_value
            self._probation.move_to_end(demoted_key)
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        while len(self._probation) + len(self._protected) > self._capacity:
            if self._probation:
                self._probation.popitem(last=False)
            else:
                self._protected.popitem(last=False)
            self._stats.bump("cache_evictions")


class TaintMapServer:
    """The map service: allocates Global IDs, answers lookups.

    One server is one **shard** of the Global-ID space.  ``shard_index``
    is embedded in the high :data:`GID_SHARD_BITS` bits of every GID it
    allocates; with the defaults (``shard_index=0, shard_count=1``) the
    allocated IDs and the wire bytes are identical to the unsharded
    protocol.  Requests are handled serially per shard — the map is a
    single-point service per partition (paper §V-F); horizontal scale
    comes from adding shards, not from threading one shard.

    ``service_time`` models the per-request processing cost of a
    production deployment where each shard runs on its own node (the
    paper boots the map on a dedicated machine).  It defaults to 0 —
    purely in-process tests pay nothing — and exists so the sharding
    benchmark can measure queueing behaviour rather than the GIL.
    """

    #: Default allocations between compacted snapshots (WAL truncates
    #: after each), when a durability store is attached.
    DEFAULT_SNAPSHOT_EVERY = 1024

    def __init__(
        self,
        kernel: SimKernel,
        ip: str,
        port: int,
        shard_index: int = 0,
        shard_count: int = 1,
        service_time: float = 0.0,
        ring: Optional[ShardRing] = None,
        store=None,
        snapshot_every: Optional[int] = None,
    ):
        if ring is not None:
            if ring.shard_count != shard_count:
                raise TaintMapError(
                    f"ring has {ring.shard_count} shards but server was "
                    f"given shard_count={shard_count}"
                )
        if not 0 <= shard_index < shard_count:
            raise TaintMapError(
                f"shard index {shard_index} outside 0..{shard_count - 1}"
            )
        self._kernel = kernel
        self.address: Address = (ip, port)
        self.shard_index = shard_index
        self.shard_count = shard_count
        #: The shard layout this server currently routes ownership by.
        #: ``None`` for standalone servers booted without address
        #: knowledge — they still detect misroutes but reply with an
        #: empty STALE_RING payload (nothing to re-route with).
        self._ring = ring
        self.ring_epoch = ring.epoch if ring is not None else 0
        self._router = (
            ring.router() if ring is not None
            else ShardRouter(shard_count, self.ring_epoch)
        )
        #: True once this shard was drained by a scale-in: it keeps
        #: answering lookups for already-forwarded state but refuses new
        #: registrations (STALE_RING with the successor ring).
        self.retired = ring is not None and shard_index in ring.retired
        self._service_time = service_time
        self._service_lock = threading.Lock()
        self._listener = None
        self._lock = threading.Lock()
        self._by_key: dict[bytes, int] = {}
        self._by_gid: dict[int, bytes] = {}
        self._next_gid = 1
        self._running = False
        self._connections: list[TcpEndpoint] = []
        self.stats = TaintMapStats()
        #: Durability: WAL + snapshot store (None = in-memory only, the
        #: historical behaviour).  Recovery runs *now*, before the
        #: listener exists, so no request can observe half-replayed
        #: state.
        self._store = store
        self._snapshot_every = (
            self.DEFAULT_SNAPSHOT_EVERY if snapshot_every is None
            else max(1, int(snapshot_every))
        )
        self._writes_since_snapshot = 0
        if store is not None:
            self._recover()
        #: Per-shard telemetry: request-handling latency plus the
        #: TaintMapStats counters folded in at scrape time.
        self.metrics = MetricsRegistry({"node": f"taintmap-shard{shard_index}"})
        self._handle_seconds = self.metrics.histogram(
            "dista_taintmap_server_handle_seconds",
            "Per-request Taint Map handling time (server side) in seconds.",
            ("op",),
        )
        self.metrics.register_collector(self._stats_samples)

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> "TaintMapServer":
        self._listener = self._kernel.listen(*self.address)
        self._running = True
        thread = threading.Thread(target=self._accept_loop, name="taintmap", daemon=True)
        thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            self._listener.close()
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for endpoint in connections:
            endpoint.close()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                endpoint = self._listener.accept(timeout=3600)
            except Exception:
                return
            with self._lock:
                self._connections.append(endpoint)
            threading.Thread(
                target=self._serve, args=(endpoint,), name="taintmap-conn", daemon=True
            ).start()

    # -- request handling --------------------------------------------------- #

    def _serve(self, endpoint: TcpEndpoint) -> None:
        try:
            while self._running:
                head = endpoint.recv(1)
                if not head:
                    return
                (length,) = struct.unpack(">I", _recv_exact(endpoint, 4))
                payload = _recv_exact(endpoint, length) if length else b""
                if head[0] == OP_MUX_HELLO:
                    # Upgrade: the rest of this connection speaks the
                    # correlation-id multiplexed framing.
                    _send_frame(endpoint, bytes([STATUS_OK]), b"")
                    self._serve_mux(endpoint)
                    return
                # Serial per-shard handling: one shard is one single-point
                # service; concurrency comes from running more shards.
                with self._service_lock:
                    if self._service_time > 0.0:
                        time.sleep(self._service_time)
                    started = time.perf_counter()
                    status, response = self._handle(head[0], payload)
                    self._handle_seconds.labels(op=op_name(head[0])).observe(
                        time.perf_counter() - started
                    )
                _send_frame(endpoint, bytes([status]), response)
        except Exception:
            pass
        finally:
            endpoint.close()

    def _serve_mux(self, endpoint: TcpEndpoint) -> None:
        """Accept loop for one upgraded (multiplexed) connection.

        Each frame is ``corr:4`` + the unchanged sync request frame
        (``op:1 | len:4 | payload``); each response echoes the
        correlation id in front of the unchanged sync response frame.
        Requests pipeline: the client never waits for one response
        before sending the next, so thousands of registrations can be
        in flight on this single connection.  Handling stays serial per
        shard (the single-point service model) but a batched request
        pays ``service_time`` once for its whole window.
        """
        while self._running:
            first = endpoint.recv(1)
            if not first:
                return
            (corr,) = struct.unpack(">I", first + _recv_exact(endpoint, 3))
            op = _recv_exact(endpoint, 1)[0]
            (length,) = struct.unpack(">I", _recv_exact(endpoint, 4))
            payload = _recv_exact(endpoint, length) if length else b""
            with self._service_lock:
                if self._service_time > 0.0:
                    time.sleep(self._service_time)
                started = time.perf_counter()
                status, response = self._handle(op, payload)
                self._handle_seconds.labels(op=op_name(op)).observe(
                    time.perf_counter() - started
                )
            endpoint.send_all(
                struct.pack(">I", corr)
                + bytes([status])
                + struct.pack(">I", len(response))
                + response
            )

    def _handle(self, op: int, payload: bytes) -> tuple[int, bytes]:
        if op == OP_REGISTER:
            with self.stats._lock:
                self.stats.register_requests += 1
                self.stats.register_entries += 1
            try:
                tags = frozenset(deserialize_tags(payload))
            except Exception:
                return STATUS_BAD_REQUEST, b""
            if self._misrouted(tags):
                return self._stale_ring_reply()
            try:
                gid = self._register(tags, payload)
            except TaintMapExhaustedError:
                # Structured, non-retried: the connection stays open, so
                # the client surfaces this instead of burning a failover.
                return STATUS_GID_EXHAUSTED, b""
            return STATUS_OK, struct.pack(">I", gid)
        if op == OP_LOOKUP:
            with self.stats._lock:
                self.stats.lookup_requests += 1
                self.stats.lookup_entries += 1
            if len(payload) != 4:
                return STATUS_BAD_REQUEST, b""
            (gid,) = struct.unpack(">I", payload)
            with self._lock:
                serialized = self._by_gid.get(gid)
            if serialized is None:
                return STATUS_UNKNOWN_GID, b""
            return STATUS_OK, serialized
        if op == OP_REGISTER_MANY:
            with self.stats._lock:
                self.stats.register_requests += 1
            try:
                entries = _split_batch_register(payload)
                taint_sets = [frozenset(deserialize_tags(entry)) for entry in entries]
            except Exception:
                return STATUS_BAD_REQUEST, b""
            with self.stats._lock:
                self.stats.register_entries += len(entries)
            if any(self._misrouted(tags) for tags in taint_sets):
                return self._stale_ring_reply()
            # One _register per entry so subclass hooks (HA replication)
            # see every registration individually.
            try:
                gids = [
                    self._register(tags, entry)
                    for tags, entry in zip(taint_sets, entries)
                ]
            except TaintMapExhaustedError:
                return STATUS_GID_EXHAUSTED, b""
            return STATUS_OK, struct.pack(f">{len(gids)}I", *gids)
        if op == OP_LOOKUP_MANY:
            with self.stats._lock:
                self.stats.lookup_requests += 1
            try:
                (count,) = struct.unpack(">H", payload[:2])
                gids = struct.unpack(f">{count}I", payload[2:])
            except Exception:
                return STATUS_BAD_REQUEST, b""
            with self.stats._lock:
                self.stats.lookup_entries += count
            out = []
            with self._lock:
                for gid in gids:
                    serialized = self._by_gid.get(gid)
                    if serialized is None:
                        return STATUS_UNKNOWN_GID, struct.pack(">I", gid)
                    out.append(struct.pack(">I", len(serialized)) + serialized)
            return STATUS_OK, b"".join(out)
        if op == OP_RING_UPDATE:
            try:
                ring = ShardRing.decode(payload)
            except TaintMapError:
                return STATUS_BAD_REQUEST, b""
            self._adopt_ring(ring)
            return STATUS_OK, struct.pack(">I", self.ring_epoch)
        if op == OP_HANDOFF_BEGIN:
            if len(payload) != 4:
                return STATUS_BAD_REQUEST, b""
            (epoch,) = struct.unpack(">I", payload)
            # Handoff always streams under the *successor* ring; a shard
            # already past that epoch would be re-migrating stale state.
            if epoch < self.ring_epoch:
                return STATUS_BAD_REQUEST, b""
            return STATUS_OK, b""
        if op == OP_HANDOFF_CHUNK:
            try:
                entries = _split_handoff_chunk(payload)
            except Exception:
                return STATUS_BAD_REQUEST, b""
            adopted = 0
            for gid, serialized in entries:
                if self._adopt_entry(gid, serialized):
                    adopted += 1
            if adopted:
                with self.stats._lock:
                    self.stats.handoff_entries += adopted
            return STATUS_OK, struct.pack(">I", adopted)
        if op == OP_HANDOFF_END:
            if len(payload) != 4:
                return STATUS_BAD_REQUEST, b""
            with self.stats._lock:
                total = self.stats.handoff_entries
            return STATUS_OK, struct.pack(">I", total)
        return STATUS_BAD_REQUEST, b""

    def _misrouted(self, tags: frozenset[TaintTag]) -> bool:
        """A register that the consistent-hash ring owns elsewhere.

        A retired (drained) shard owns nothing: it keeps answering
        lookups for state it forwarded but bounces every registration
        to the successor ring.
        """
        if self.retired:
            return True
        if self.shard_count == 1:
            return False
        return self._router.shard_for_key(taint_key(tags)) != self.shard_index

    def _stale_ring_reply(self) -> tuple[int, bytes]:
        """Misroute reply: the client's ring is behind (or it guessed) —
        hand back the ring we route by so it can re-route, or an empty
        payload for standalone servers that were never given addresses."""
        encoded = self._ring.encode() if self._ring is not None else b""
        return STATUS_STALE_RING, encoded

    # -- durability (WAL + snapshots) ------------------------------------- #

    def _recover(self) -> None:
        """Rebuild state from snapshot + WAL replay (ctor-time, pre-listen).

        The allocator resumes past the high-water mark of every
        own-shard GID ever made durable — **no GID is ever renumbered**.
        Replay is setdefault-idempotent, so a WAL retained past its
        snapshot (a crash between snapshot write and log truncate)
        replays as a no-op; a torn tail record (a crash mid-append) is
        counted and dropped — its allocation was never acknowledged
        durably, so dropping it is the correct recovery.
        """
        raw_snapshot = self._store.read_snapshot()
        recovered_ring: Optional[ShardRing] = None
        if raw_snapshot:
            try:
                next_gid, ring_bytes, gid_entries, key_entries = (
                    durability.decode_snapshot(raw_snapshot)
                )
            except (ValueError, struct.error) as exc:
                raise TaintMapError(
                    f"corrupt taint map snapshot: {exc!r}"
                ) from exc
            self._next_gid = max(self._next_gid, next_gid)
            for gid, serialized in gid_entries:
                self._by_gid[gid] = serialized
            for key, gid in key_entries:
                self._by_key[key] = gid
            if ring_bytes:
                recovered_ring = ShardRing.decode(ring_bytes)
        records, torn = durability.iter_records(self._store.read_log())
        replayed = 0
        for kind, payload in records:
            if kind == durability.WAL_ENTRY:
                if len(payload) < 4:
                    continue
                (gid,) = struct.unpack(">I", payload[:4])
                serialized = payload[4:]
                if gid not in self._by_gid:
                    self._by_gid[gid] = serialized
                    replayed += 1
                try:
                    key = taint_key(frozenset(deserialize_tags(serialized)))
                except Exception:
                    continue
                # Log order *is* arrival order, so setdefault rebuilds
                # exactly the dedup decisions the live shard made.
                self._by_key.setdefault(key, gid)
            elif kind == durability.WAL_RING:
                try:
                    ring = ShardRing.decode(payload)
                except TaintMapError:
                    continue
                if recovered_ring is None or ring.epoch > recovered_ring.epoch:
                    recovered_ring = ring
        for gid in self._by_gid:
            if gid_shard(gid) == self.shard_index:
                self._next_gid = max(self._next_gid, (gid & GID_SEQ_MASK) + 1)
        if recovered_ring is not None and (
            self._ring is None or recovered_ring.epoch > self.ring_epoch
        ):
            # Already durable — adopt without re-logging.  Restoring the
            # epoch is what lets a shard that crashed mid-migration
            # re-serve OP_HANDOFF_* (BEGIN checks the epoch) when the
            # coordinator resumes.
            if recovered_ring.shard_count > self.shard_index:
                self._router = recovered_ring.router()
                self._ring = recovered_ring
                self.ring_epoch = recovered_ring.epoch
                self.shard_count = recovered_ring.shard_count
                self.retired = self.shard_index in recovered_ring.retired
        self.stats.global_taints = len(self._by_gid)
        self.stats.wal_replayed = replayed
        self.stats.wal_torn_records = torn

    def _persist_entry_locked(self, gid: int, serialized: bytes) -> None:
        """Append one allocation/adoption to the WAL.  Caller holds
        ``_lock``, so the append lands before the response that
        acknowledges the GID can leave the shard."""
        if self._store is None:
            return
        self._store.append_log(
            durability.pack_record(
                durability.WAL_ENTRY, struct.pack(">I", gid) + serialized
            )
        )
        self._writes_since_snapshot += 1
        self.stats.bump("wal_appends")

    def _maybe_snapshot(self) -> None:
        if self._store is None:
            return
        with self._lock:
            if self._writes_since_snapshot >= self._snapshot_every:
                self._snapshot_locked()

    def snapshot_now(self) -> None:
        """Force a compacted snapshot + WAL truncate (tests, shutdown)."""
        if self._store is None:
            return
        with self._lock:
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        data = durability.encode_snapshot(
            self._next_gid,
            self._ring.encode() if self._ring is not None else b"",
            list(self._by_gid.items()),
            list(self._by_key.items()),
        )
        # Write-then-truncate under the allocation lock: no append can
        # race between the state capture and the truncate, so the worst
        # crash outcome is a fresh snapshot plus a stale WAL — whose
        # replay is setdefault-idempotent.
        self._store.write_snapshot(data)
        self._store.truncate_log()
        self._writes_since_snapshot = 0
        self.stats.bump("wal_snapshots")

    # -- elastic resharding (control plane) ------------------------------- #

    def _adopt_ring(self, ring: ShardRing) -> bool:
        """Atomically flip to a newer ring (no-op for older epochs).

        Called from ``_handle``, which runs under ``_service_lock`` — no
        register can interleave with the flip, so every registration is
        judged under exactly one ring.
        """
        if ring.epoch <= self.ring_epoch:
            return False
        if ring.shard_count <= self.shard_index:
            raise TaintMapError(
                f"ring epoch {ring.epoch} has {ring.shard_count} shards; "
                f"shard {self.shard_index} is not in it"
            )
        self._router = ring.router()
        self._ring = ring
        self.ring_epoch = ring.epoch
        self.shard_count = ring.shard_count
        self.retired = self.shard_index in ring.retired
        if self._store is not None:
            # Persisted so a restarted shard resumes judging requests
            # (and serving handoffs) under the epoch it had adopted.
            self._store.append_log(
                durability.pack_record(durability.WAL_RING, ring.encode())
            )
            self.stats.bump("wal_appends")
        return True

    def _adopt_entry(self, gid: int, serialized: bytes) -> bool:
        """Install one migrated ``(gid, taint)`` pair.

        Setdefault semantics on *both* maps: if this shard already has
        the key (it allocated its own GID for it mid-handoff, or an
        earlier chunk was replayed after a coordinator retry), the
        existing dedup entry wins — but the incoming GID is still
        installed in ``_by_gid`` so it resolves here (drain forwarding
        depends on that).  ``global_taints`` counts the resolvable-GID
        population, so it bumps exactly when a *new* GID lands: a
        replayed chunk whose key was since re-registered locally is a
        stats no-op, never a double count.
        """
        try:
            key = taint_key(frozenset(deserialize_tags(serialized)))
        except Exception:
            return False
        with self._lock:
            new_gid = gid not in self._by_gid
            if new_gid:
                self._by_gid[gid] = serialized
            new_key = key not in self._by_key
            if new_key:
                self._by_key[key] = gid
            if new_gid:
                self._persist_entry_locked(gid, serialized)
        if new_gid:
            with self.stats._lock:
                self.stats.global_taints += 1
            self._maybe_snapshot()
        return new_gid or new_key

    def handoff_plan(
        self, ring: ShardRing, min_seq: int = 1, max_seq: Optional[int] = None
    ) -> dict[int, list[tuple[int, bytes]]]:
        """Entries this shard must hand to new owners under ``ring``.

        Only GIDs *this shard allocated* are considered (adopted foreign
        entries are re-handed-off by their allocating shard, which also
        kept them), filtered to the ``[min_seq, max_seq)`` sequence
        window so the coordinator can do a bulk pass and then a small
        delta pass for registrations that raced the bulk copy.
        """
        router = ring.router()
        plan: dict[int, list[tuple[int, bytes]]] = {}
        with self._lock:
            if max_seq is None:
                max_seq = self._next_gid
            for key, gid in self._by_key.items():
                if gid_shard(gid) != self.shard_index:
                    continue
                seq = gid & GID_SEQ_MASK
                if not min_seq <= seq < max_seq:
                    continue
                owner = router.shard_for_key(key)
                if owner == self.shard_index:
                    continue
                plan.setdefault(owner, []).append((gid, self._by_gid[gid]))
        return plan

    def drain_plan(
        self,
        ring: ShardRing,
        forward_shard: int,
        min_seq: int = 1,
        max_seq: Optional[int] = None,
    ) -> dict[int, list[tuple[int, bytes]]]:
        """Everything this shard must push out before retiring under
        ``ring`` (the successor ring in which it is retired).

        Two obligations:

        * every ``_by_gid`` entry — own *and* adopted foreign — goes to
          ``forward_shard``, the surviving shard whose address takes
          over the retired slot, so lookups self-routing by the drained
          shard's GID bits stay answerable forever (GID tombstone
          forwarding);
        * every ``_by_key`` dedup entry goes to that key's owner under
          the successor ring (the epoch bump re-salts every vnode, so
          ownership moves for *all* keys, not just this shard's), so
          future registrations keep deduplicating to the original GID.

        Own-shard GIDs are filtered to the ``[min_seq, max_seq)`` window
        for the coordinator's bulk/delta split; adopted foreign entries
        carry no position in this shard's sequence space and ship in the
        bulk pass only (``min_seq <= 1``).  Duplicates across the two
        obligations are fine — adoption is idempotent.
        """
        router = ring.router()
        plan: dict[int, list[tuple[int, bytes]]] = {}
        with self._lock:
            if max_seq is None:
                max_seq = self._next_gid

            def in_window(gid: int) -> bool:
                if gid_shard(gid) != self.shard_index:
                    return min_seq <= 1
                return min_seq <= (gid & GID_SEQ_MASK) < max_seq

            for gid, serialized in self._by_gid.items():
                if in_window(gid):
                    plan.setdefault(forward_shard, []).append((gid, serialized))
            for key, gid in self._by_key.items():
                if not in_window(gid):
                    continue
                owner = router.shard_for_key(key)
                if owner not in (forward_shard, self.shard_index):
                    plan.setdefault(owner, []).append((gid, self._by_gid[gid]))
        return plan

    @property
    def next_seq(self) -> int:
        """Watermark for the coordinator's bulk/delta handoff split."""
        with self._lock:
            return self._next_gid

    def _register(self, tags: frozenset[TaintTag], serialized: bytes) -> int:
        key = taint_key(tags)
        with self._lock:
            gid = self._by_key.get(key)
            if gid is not None:
                return gid
            seq = self._next_gid
            if seq > GID_SEQ_MASK:
                raise TaintMapExhaustedError(
                    f"shard {self.shard_index} exhausted its {GID_SHARD_SHIFT}-bit "
                    "Global-ID sequence space"
                )
            self._next_gid += 1
            gid = make_gid(self.shard_index, seq)
            self._by_key[key] = gid
            self._by_gid[gid] = serialized
            self._persist_entry_locked(gid, serialized)
        with self.stats._lock:
            self.stats.global_taints += 1
        self._maybe_snapshot()
        return gid

    @property
    def gid_headroom(self) -> int:
        """Sequence numbers left before this shard exhausts its GID space."""
        with self._lock:
            return max(0, GID_SEQ_MASK - self._next_gid + 1)

    # -- introspection -------------------------------------------------------- #

    def global_taint_count(self) -> int:
        with self._lock:
            return len(self._by_key)

    def _stats_samples(self) -> dict:
        """Scrape-time fold of :class:`TaintMapStats` into the registry."""
        snap = self.stats.snapshot()
        return {
            "dista_taintmap_server_requests_total": {
                "type": "counter",
                "help": "Requests handled by this Taint Map shard.",
                "samples": [
                    {"labels": {"kind": "register"}, "value": snap["register_requests"]},
                    {"labels": {"kind": "lookup"}, "value": snap["lookup_requests"]},
                ],
            },
            "dista_taintmap_server_entries_total": {
                "type": "counter",
                "help": "Batch entries processed by this Taint Map shard.",
                "samples": [
                    {"labels": {"kind": "register"}, "value": snap["register_entries"]},
                    {"labels": {"kind": "lookup"}, "value": snap["lookup_entries"]},
                ],
            },
            "dista_taintmap_global_taints": {
                "type": "gauge",
                "help": "Distinct global taints registered on this shard.",
                "samples": [{"labels": {}, "value": snap["global_taints"]}],
            },
            "dista_ring_epoch": {
                "type": "gauge",
                "help": "Hash-ring epoch this participant currently routes by.",
                "samples": [{"labels": {}, "value": self.ring_epoch}],
            },
            "dista_handoff_entries_total": {
                "type": "counter",
                "help": "Migrated (GID, taint) entries adopted by this shard.",
                "samples": [{"labels": {}, "value": snap["handoff_entries"]}],
            },
            "dista_gid_headroom": {
                "type": "gauge",
                "help": (
                    "Sequence numbers left before this shard exhausts its "
                    "Global-ID allocation space."
                ),
                "samples": [{"labels": {}, "value": self.gid_headroom}],
            },
            "dista_wal_appends_total": {
                "type": "counter",
                "help": "Records appended to this shard's write-ahead log.",
                "samples": [{"labels": {}, "value": snap["wal_appends"]}],
            },
            "dista_wal_replayed_total": {
                "type": "counter",
                "help": "WAL entries replayed during the last recovery.",
                "samples": [{"labels": {}, "value": snap["wal_replayed"]}],
            },
            "dista_wal_snapshots_total": {
                "type": "counter",
                "help": "Compacted snapshots written by this shard.",
                "samples": [{"labels": {}, "value": snap["wal_snapshots"]}],
            },
            "dista_wal_torn_records_total": {
                "type": "counter",
                "help": "Torn WAL tail records dropped during recovery.",
                "samples": [{"labels": {}, "value": snap["wal_torn_records"]}],
            },
            "dista_drain_entries_total": {
                "type": "counter",
                "help": "Entries this shard pushed out while being drained.",
                "samples": [{"labels": {}, "value": snap["drain_entries"]}],
            },
            "dista_drain_retired": {
                "type": "gauge",
                "help": "1 once this shard has been drained (retired), else 0.",
                "samples": [{"labels": {}, "value": 1 if self.retired else 0}],
            },
        }


class ShardedTaintMapService:
    """Boots and owns N Taint Map shards on one service node.

    Shard *i* listens on ``base_port + i``.  The single-shard default
    (``shard_count=1``) is exactly one classic :class:`TaintMapServer`.
    """

    def __init__(
        self,
        kernel: SimKernel,
        ip: str,
        base_port: int,
        shard_count: int = 1,
        service_time: float = 0.0,
        store_factory=None,
        snapshot_every: Optional[int] = None,
    ):
        self._kernel = kernel
        self.ip = ip
        self.base_port = base_port
        self._service_time = service_time
        #: ``store_factory(shard_index)`` → durability store for that
        #: shard (None = in-memory shards, the historical behaviour).
        #: Kept so :meth:`restart_shard` can re-attach the same store.
        self._store_factory = store_factory
        self._snapshot_every = snapshot_every
        self._stores: dict[int, object] = {}
        ring = ShardRing(
            0, [(ip, base_port + index) for index in range(shard_count)]
        )
        self._ring = ring
        self.servers = [
            TaintMapServer(
                kernel,
                ip,
                base_port + index,
                shard_index=index,
                shard_count=shard_count,
                service_time=service_time,
                ring=ring,
                store=self._store_for(index),
                snapshot_every=snapshot_every,
            )
            for index in range(shard_count)
        ]

    def _store_for(self, shard_index: int):
        if self._store_factory is None:
            return None
        store = self._stores.get(shard_index)
        if store is None:
            store = self._store_factory(shard_index)
            self._stores[shard_index] = store
        return store

    @property
    def addresses(self) -> list[Address]:
        return [server.address for server in self.servers]

    @property
    def ring(self) -> ShardRing:
        """The newest ring this service knows (bumped by scale-outs)."""
        return self._ring

    def add_shards(self, ring: ShardRing, server_factory=None) -> list[TaintMapServer]:
        """Boot (and start) the shards that ``ring`` adds over the
        current layout.  New servers are born on the successor ring —
        they judge every registration under the new epoch from their
        first request.  The service's advertised ring flips only after
        the coordinator finishes migration (:meth:`adopt_ring`)."""
        if ring.shard_count <= len(self.servers):
            raise TaintMapError(
                f"ring has {ring.shard_count} shards; service already runs "
                f"{len(self.servers)}"
            )
        # Compare against the *ring's* addresses, not the server
        # objects' — after a drain, a retired slot advertises its
        # forwarding address while the (stopped) server object keeps
        # the original one.
        if ring.addresses[: len(self.servers)] != self._ring.addresses:
            raise TaintMapError("scale-out ring must preserve existing shard addresses")
        factory = server_factory or TaintMapServer
        added = []
        for index in range(len(self.servers), ring.shard_count):
            ip, port = ring.addresses[index]
            server = factory(
                self._kernel,
                ip,
                port,
                shard_index=index,
                shard_count=ring.shard_count,
                service_time=self._service_time,
                ring=ring,
                store=self._store_for(index),
                snapshot_every=self._snapshot_every,
            )
            server.start()
            added.append(server)
        self.servers.extend(added)
        return added

    def adopt_ring(self, ring: ShardRing) -> None:
        if ring.epoch > self._ring.epoch:
            self._ring = ring

    @property
    def retired(self) -> frozenset[int]:
        """Shard indices drained by a completed scale-in."""
        return self._ring.retired

    def restart_shard(self, shard_index: int, server_factory=None) -> TaintMapServer:
        """Crash-restart shard ``shard_index``: stop it (if running) and
        boot a replacement on the same address that recovers from the
        shard's durability store.  Only meaningful with a
        ``store_factory`` — an in-memory shard cannot restart without
        renumbering GIDs, which is exactly the bug durability removes.
        """
        if self._store_factory is None:
            raise TaintMapError(
                "restart_shard requires a durable service (store_factory)"
            )
        old = self.servers[shard_index]
        old.stop()
        factory = server_factory or TaintMapServer
        ip, port = old.address
        server = factory(
            self._kernel,
            ip,
            port,
            shard_index=shard_index,
            shard_count=self._ring.shard_count,
            service_time=self._service_time,
            ring=self._ring,
            store=self._store_for(shard_index),
            snapshot_every=self._snapshot_every,
        )
        server.start()
        self.servers[shard_index] = server
        return server

    def stop_retired(self) -> list[int]:
        """Stop the servers of retired shards.

        Call only after every client routes by the successor ring — the
        retired slots' GIDs then resolve at their forwarding shard, so
        nothing is lost by taking the drained processes down.
        """
        stopped = []
        for index in sorted(self._ring.retired):
            server = self.servers[index]
            if server._running:
                server.stop()
                stopped.append(index)
        return stopped

    def start(self) -> "ShardedTaintMapService":
        for server in self.servers:
            server.start()
        return self

    def stop(self) -> None:
        for server in self.servers:
            server.stop()

    def global_taint_count(self) -> int:
        return sum(server.global_taint_count() for server in self.servers)

    def stats_snapshot(self) -> dict:
        """Counter totals across every shard (one §V-F aggregate)."""
        return TaintMapStats.merge(
            *(server.stats.snapshot() for server in self.servers)
        )

    def metrics_registries(self) -> list:
        return [server.metrics for server in self.servers]


def _normalize_addresses(address) -> list[Address]:
    """Accept one ``(ip, port)`` or a sequence of them (one per shard)."""
    if (
        isinstance(address, tuple)
        and len(address) == 2
        and isinstance(address[0], str)
    ):
        return [address]
    addresses = [tuple(entry) for entry in address]
    if not addresses:
        raise TaintMapError("taint map address list is empty")
    if len(addresses) > MAX_SHARDS:
        raise TaintMapError(
            f"{len(addresses)} shard addresses exceed the {MAX_SHARDS}-shard "
            f"GID namespace ({GID_SHARD_BITS} shard bits)"
        )
    return addresses


class TaintMapClient:
    """Per-node connection to the Taint Map, with both-direction caches.

    ``address`` is either a single ``(ip, port)`` — the classic
    single-point deployment — or a sequence of shard addresses in shard
    order.  Registrations route by consistent hash of the canonical
    taint key; lookups route by the shard bits of the received GID.
    Each shard gets its own **connection pool**, so concurrent JNI
    wrappers on one node issue requests in parallel instead of queueing
    behind a single locked connection, and batch operations resolve
    their per-shard sub-batches concurrently (one round-trip per shard).

    ``cache_enabled=False`` exists only for the ablation benchmark — it
    re-registers every byte's taint, demonstrating why Fig. 9's step ②
    ("does not need to request a Global ID again") matters.
    ``cache_capacity`` optionally bounds both caches with LRU eviction
    (default unbounded, preserving Fig. 9 semantics exactly).
    """

    #: Idle connections kept per shard; beyond this, released
    #: connections are closed rather than pooled.
    MAX_IDLE_PER_SHARD = 8

    #: Telemetry label naming the request transport; the async client
    #: (:mod:`repro.core.aio_transport`) overrides it.
    transport_name = "pooled"

    #: Consecutive ``STATUS_STALE_RING`` replies tolerated on one
    #: logical registration before giving up.  A live scale-out settles
    #: in one or two hops (adopt the reply's ring, re-route); a genuine
    #: misconfiguration keeps answering stale and must surface.
    RING_RETRY_LIMIT = 8

    def __init__(
        self,
        node,
        address: Union[Address, Sequence[Address]],
        cache_enabled: bool = True,
        cache_capacity: Optional[int] = None,
        cache_admission: bool = False,
    ):
        self._node = node
        #: Replica candidates per shard; the base client has exactly one
        #: per shard, :class:`~repro.core.ha.FailoverTaintMapClient`
        #: appends a standby to each.
        self._shard_replicas: list[list[Address]] = [
            [addr] for addr in _normalize_addresses(address)
        ]
        self._active = [0] * len(self._shard_replicas)
        self._ring = ShardRing(0, [replicas[0] for replicas in self._shard_replicas])
        self._router = self._ring.router()
        self._cache_enabled = cache_enabled
        self._pool_lock = threading.Lock()
        self._pools: list[list[TcpEndpoint]] = [[] for _ in self._shard_replicas]
        #: Client-side counters: cache hits/misses/evictions.
        self.stats = TaintMapStats()
        #: taint node identity → (Global ID, taint handle).  Keyed by
        #: ``id(node)`` (not the per-tree rank, which collides between
        #: different trees when a foreign taint handle is registered).
        #: The entry holds a strong reference to the taint so its node
        #: can never be garbage-collected while cached — otherwise a
        #: reused ``id()`` could alias a dead node's Global ID.
        self._gid_cache = _LruCache(cache_capacity, self.stats, cache_admission)
        #: Global ID → local Taint handle.
        self._taint_cache = _LruCache(cache_capacity, self.stats, cache_admission)
        self.requests_sent = 0
        #: Node telemetry (None for bare test nodes without a registry).
        self._metrics = getattr(node, "metrics", None)
        self._rpc_seconds = None
        self._requests_total = None
        self._batch_entries = None
        if self._metrics is not None:
            self._rpc_seconds = self._metrics.histogram(
                "dista_taintmap_rpc_seconds",
                "Client-observed Taint Map RPC latency in seconds.",
                ("op", "transport"),
            )
            self._requests_total = self._metrics.counter(
                "dista_taintmap_requests_total",
                "Taint Map requests issued by this node.",
                ("op", "transport"),
            )
            self._batch_entries = self._metrics.histogram(
                "dista_taintmap_batch_entries",
                "Entries per batched Taint Map request (per-shard sub-batch).",
                ("op",),
                lowest=1.0,
                buckets=16,
            )
            self._metrics.register_collector(self._cache_samples)

    def _cache_samples(self) -> dict:
        """Scrape-time fold of the client-side cache counters."""
        snap = self.stats.snapshot()
        return {
            "dista_cache_events_total": {
                "type": "counter",
                "help": "GID/taint cache events on this node's Taint Map client.",
                "samples": [
                    {"labels": {"event": "hit"}, "value": snap["cache_hits"]},
                    {"labels": {"event": "miss"}, "value": snap["cache_misses"]},
                    {"labels": {"event": "eviction"}, "value": snap["cache_evictions"]},
                    {
                        "labels": {"event": "admission_rejection"},
                        "value": snap["cache_admission_rejections"],
                    },
                ],
            },
            "dista_taintmap_close_errors_total": {
                "type": "counter",
                "help": "Socket errors suppressed while closing Taint Map connections.",
                "samples": [{"labels": {}, "value": snap["close_errors"]}],
            },
            "dista_ring_epoch": {
                "type": "gauge",
                "help": "Hash-ring epoch this participant currently routes by.",
                "samples": [{"labels": {}, "value": self._ring.epoch}],
            },
            "dista_stale_ring_retries_total": {
                "type": "counter",
                "help": "Registrations re-routed after a STALE_RING reply.",
                "samples": [{"labels": {}, "value": snap["stale_ring_retries"]}],
            },
        }

    def _observe_rpc(self, op: int, elapsed: float) -> None:
        if self._rpc_seconds is not None:
            name = op_name(op)
            self._rpc_seconds.labels(op=name, transport=self.transport_name).observe(
                elapsed
            )
            self._requests_total.labels(op=name, transport=self.transport_name).inc()

    def _observe_batch(self, op: int, entries: int) -> None:
        if self._batch_entries is not None:
            self._batch_entries.labels(op=op_name(op)).observe(entries)

    @property
    def shard_count(self) -> int:
        return len(self._shard_replicas)

    @property
    def ring(self) -> ShardRing:
        return self._ring

    # -- elastic resharding ---------------------------------------------- #

    def adopt_ring(self, ring: ShardRing) -> bool:
        """Move to a newer ring: grow per-shard transport state first,
        then swap the router.  Ordering matters — once the router can
        return a new shard index, every per-shard list must already have
        that slot, so concurrent requests never index past the end.
        Older/equal epochs are ignored (monotone adoption: two racing
        STALE_RING replies can arrive out of order).

        Retired slots **readdress** rather than grow: the drained
        shard's slot takes the forwarding (successor) address, stale
        pooled connections to the drained process are discarded, and
        lookups for the drained shard's GID bits transparently dial the
        forward shard.  Readdressed slots are exempt from the
        address-preservation check — moving is their whole point.
        """
        stale: list[TcpEndpoint] = []
        with self._pool_lock:
            if ring.epoch <= self._ring.epoch:
                return False
            for index, replicas in enumerate(self._shard_replicas):
                if index >= ring.shard_count:
                    break
                if ring.addresses[index] == replicas[0]:
                    continue
                if index not in ring.retired:
                    raise TaintMapError(
                        "adopted ring does not preserve existing shard addresses"
                    )
            readdressed = []
            for index in sorted(ring.retired):
                if index >= len(self._shard_replicas):
                    continue
                if self._shard_replicas[index][0] == ring.addresses[index]:
                    continue
                self._shard_replicas[index] = list(
                    self._replicas_for_new_shard(index, ring.addresses[index])
                )
                self._active[index] = 0
                stale.extend(self._pools[index])
                self._pools[index].clear()
                readdressed.append(index)
            for index in range(len(self._shard_replicas), ring.shard_count):
                self._shard_replicas.append(
                    list(self._replicas_for_new_shard(index, ring.addresses[index]))
                )
                self._active.append(0)
                self._pools.append([])
            grown = len(self._shard_replicas)
        for endpoint in stale:
            self._close_quietly(endpoint)
        # Outside the pool lock: the async transport grows on its event
        # loop and must not be awaited while holding a client lock.
        self._on_shards_grown(grown)
        if readdressed:
            self._on_shards_readdressed(readdressed)
        with self._pool_lock:
            if ring.epoch <= self._ring.epoch:
                return False  # a racing adopter moved us even further
            self._ring = ring
            self._router = ring.router()
        return True

    def _replicas_for_new_shard(self, index: int, address: Address) -> list[Address]:
        """Replica candidates for a shard that appeared via scale-out.
        The base client has exactly the primary; HA clients override to
        grow their per-shard standby lists with the ring."""
        return [address]

    def _on_shards_grown(self, shard_count: int) -> None:
        """Hook for transports with per-shard state beyond the pools."""

    def _on_shards_readdressed(self, indices: list[int]) -> None:
        """Hook: the listed shard slots changed address (drain
        forwarding).  Transports with cached per-shard connections drop
        them so new requests dial the forwarding shard."""

    # -- connection pool ------------------------------------------------- #

    @property
    def _endpoint(self) -> Optional[TcpEndpoint]:
        """Compatibility view of the transport: shard 0's most recently
        pooled connection (the seed client's single connection)."""
        with self._pool_lock:
            pool = self._pools[0]
            return pool[-1] if pool else None

    @_endpoint.setter
    def _endpoint(self, value) -> None:
        if value is not None:
            raise TaintMapError("_endpoint can only be reset to None")
        self._drop_pools()

    def _close_quietly(self, endpoint: TcpEndpoint) -> None:
        """Close an endpoint, suppressing (and counting) close-time
        socket errors — one bad endpoint must never abort a cache/pool
        reset that still has healthy endpoints to release."""
        try:
            endpoint.close()
        except Exception:
            self.stats.bump("close_errors")

    def _drop_pools(self) -> None:
        with self._pool_lock:
            endpoints = [e for pool in self._pools for e in pool]
            for pool in self._pools:
                pool.clear()
        for endpoint in endpoints:
            self._close_quietly(endpoint)

    def _acquire(self, shard: int) -> tuple[TcpEndpoint, bool]:
        """An idle pooled connection (reused=True) or a fresh connect."""
        with self._pool_lock:
            pool = self._pools[shard]
            while pool:
                endpoint = pool.pop()
                if not endpoint.closed:
                    return endpoint, True
            address = self._shard_replicas[shard][self._active[shard]]
        return self._node.kernel.connect(self._node.ip, address), False

    def _release(self, shard: int, endpoint: TcpEndpoint) -> None:
        with self._pool_lock:
            pool = self._pools[shard]
            if len(pool) < self.MAX_IDLE_PER_SHARD:
                pool.append(endpoint)
                return
        self._close_quietly(endpoint)

    def _rotate(self, shard: int, observed_active: int) -> None:
        """Fail over ``shard`` to its next replica (no-op if another
        thread already rotated past ``observed_active``)."""
        with self._pool_lock:
            if self._active[shard] != observed_active:
                return
            self._active[shard] = (observed_active + 1) % len(
                self._shard_replicas[shard]
            )
            stale = list(self._pools[shard])
            self._pools[shard].clear()
        for endpoint in stale:
            self._close_quietly(endpoint)

    # -- request path ----------------------------------------------------- #

    def _roundtrip(self, endpoint: TcpEndpoint, op: int, payload: bytes) -> tuple[int, bytes]:
        started = time.perf_counter()
        _send_frame(endpoint, bytes([op]), payload)
        status = _recv_exact(endpoint, 1)[0]
        (length,) = struct.unpack(">I", _recv_exact(endpoint, 4))
        response = _recv_exact(endpoint, length) if length else b""
        with self.stats._lock:
            self.requests_sent += 1
        self._observe_rpc(op, time.perf_counter() - started)
        return status, response

    def _attempt(self, shard: int, op: int, payload: bytes) -> tuple[int, bytes]:
        """One request against the shard's active replica.

        A connection that fails mid-frame is **always closed and
        discarded** — a poisoned half-read connection must never return
        to the pool, or its buffered remainder would desynchronize
        framing for every subsequent request.  Failures on *reused*
        pooled connections (which may simply have gone stale while idle)
        retry once on a fresh connection; fresh-connection failures
        propagate to the failover layer.
        """
        while True:
            endpoint, reused = self._acquire(shard)
            try:
                status, response = self._roundtrip(endpoint, op, payload)
            except Exception:
                self._close_quietly(endpoint)
                if reused:
                    continue
                raise
            self._release(shard, endpoint)
            return status, response

    def _request(self, op: int, payload: bytes, shard: int = 0) -> bytes:
        replicas = self._shard_replicas[shard]
        last_error: Optional[Exception] = None
        for _ in range(len(replicas)):
            observed_active = self._active[shard]
            try:
                status, response = self._attempt(shard, op, payload)
            except TRANSPORT_ERRORS as exc:
                last_error = exc
                self._rotate(shard, observed_active)
                continue
            # Protocol-level status: semantic errors never fail over.
            if status == STATUS_UNKNOWN_GID:
                raise TaintMapError("unknown Global ID")
            if status == STATUS_STALE_RING:
                raise self._stale_ring_error(shard, response)
            if status == STATUS_GID_EXHAUSTED:
                raise TaintMapExhaustedError(
                    f"shard {shard} has exhausted its Global-ID sequence space"
                )
            if status != STATUS_OK:
                raise TaintMapError(f"taint map rejected request (status {status})")
            return response
        if len(replicas) == 1:
            raise last_error  # single replica: surface the transport error
        raise TaintMapError(f"all taint map replicas unreachable: {last_error}")

    def _request_by_shard(
        self, calls: Sequence[tuple[int, int, bytes]]
    ) -> list[bytes]:
        """Fire ``(shard, op, payload)`` requests concurrently, one
        thread per shard, preserving the one-round-trip-per-shard
        property for batches that span the ring."""
        if len(calls) == 1:
            shard, op, payload = calls[0]
            return [self._request(op, payload, shard)]
        results: list[Optional[bytes]] = [None] * len(calls)
        errors: list[Exception] = []

        def fire(index: int, shard: int, op: int, payload: bytes) -> None:
            try:
                results[index] = self._request(op, payload, shard)
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(i, *call), daemon=True)
            for i, call in enumerate(calls)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    def _stale_ring_error(self, shard: int, response: bytes) -> TaintMapStaleRingError:
        """Decode a STALE_RING reply, adopt its ring, build the retryable
        error.  Shared by the pooled request path and the async flush."""
        self.stats.bump("stale_ring_retries")
        ring = ShardRing.decode(response) if response else None
        adopted = self.adopt_ring(ring) if ring is not None else False
        return TaintMapStaleRingError(
            f"shard {shard} rejected a registration routed on a stale ring "
            f"(epoch {self._ring.epoch})",
            ring=ring,
            adopted=adopted,
        )

    def _shard_for_taint(self, taint: Taint) -> int:
        return self._router.shard_for_key(taint_key(taint.tags))

    def _shard_for_gid(self, gid: int) -> int:
        shard = gid_shard(gid)
        if shard >= len(self._shard_replicas):
            raise TaintMapError(
                f"Global ID {gid} names shard {shard}, but only "
                f"{len(self._shard_replicas)} shard(s) are configured"
            )
        return shard

    # -- sender side (Fig. 9 steps 1-2) ---------------------------------- #

    def gid_for(self, taint: Optional[Taint]) -> int:
        """Global ID for a taint; 0 for the empty taint."""
        if taint is None or taint.is_empty:
            return 0
        key = id(taint.node)
        if self._cache_enabled:
            cached = self._gid_cache.get(key)
            if cached is not None:
                return cached[0]
        payload = serialize_tags(taint.tags)
        for attempt in range(self.RING_RETRY_LIMIT):
            try:
                response = self._request(
                    OP_REGISTER, payload, self._shard_for_taint(taint)
                )
                break
            except TaintMapStaleRingError:
                # Re-route under the (possibly just-adopted) ring; back
                # off briefly when the reply did not move us forward — a
                # mid-flip server settles within a few handling turns.
                self._stale_ring_backoff(attempt)
        else:
            raise TaintMapError(
                f"registration still stale-rung after {self.RING_RETRY_LIMIT} "
                "re-routes; client and server rings disagree persistently"
            )
        (gid,) = struct.unpack(">I", response)
        self._record_registered(taint, gid)
        return gid

    def gids_for(self, taints: Sequence[Optional[Taint]]) -> list[int]:
        """Global IDs for a batch of taints, resolving all cache misses
        in one ``OP_REGISTER_MANY`` round-trip **per shard**, with the
        per-shard sub-batches issued concurrently.

        A message whose shadow forms *k* label runs therefore costs at
        most one request per shard on first send, and zero on resend
        (Fig. 9's "does not need to request a Global ID again", batched).
        """
        gids: list[Optional[int]] = [None] * len(taints)
        misses: dict[int, tuple[Taint, list[int]]] = {}
        for i, taint in enumerate(taints):
            if taint is None or taint.is_empty:
                gids[i] = 0
                continue
            key = id(taint.node)
            if self._cache_enabled:
                cached = self._gid_cache.get(key)
                if cached is not None:
                    gids[i] = cached[0]
                    continue
            if key in misses:
                misses[key][1].append(i)
            else:
                misses[key] = (taint, [i])
        if misses:
            for attempt in range(self.RING_RETRY_LIMIT):
                try:
                    self._register_misses(misses, gids)
                    break
                except TaintMapStaleRingError:
                    # Registration is idempotent server-side, so losing
                    # a partial batch to a mid-flip shard is safe: the
                    # whole miss set re-routes and re-fires under the
                    # adopted ring, returning the same GIDs.
                    self._stale_ring_backoff(attempt)
            else:
                raise TaintMapError(
                    f"batch registration still stale-rung after "
                    f"{self.RING_RETRY_LIMIT} re-routes"
                )
        return gids  # type: ignore[return-value]

    def _register_misses(
        self,
        misses: dict[int, tuple[Taint, list[int]]],
        gids: list[Optional[int]],
    ) -> None:
        """One routed OP_REGISTER_MANY volley for a batch's cache misses."""
        by_shard: dict[int, list[tuple[Taint, list[int]]]] = {}
        for taint, positions in misses.values():
            by_shard.setdefault(self._shard_for_taint(taint), []).append(
                (taint, positions)
            )
        # A sub-batch beyond the 16-bit wire count is chunked into
        # several frames (each entry count fits ``>H``); the chunks
        # still fire concurrently with every other call.
        calls, chunks = [], []
        for shard, entries in by_shard.items():
            for chunk in _protocol_chunks(entries):
                calls.append(
                    (
                        shard,
                        OP_REGISTER_MANY,
                        _pack_batch_register(
                            [serialize_tags(taint.tags) for taint, _ in chunk]
                        ),
                    )
                )
                chunks.append(chunk)
                self._observe_batch(OP_REGISTER_MANY, len(chunk))
        responses = self._request_by_shard(calls)
        for chunk, response in zip(chunks, responses):
            new_gids = struct.unpack(f">{len(chunk)}I", response)
            for (taint, positions), gid in zip(chunk, new_gids):
                self._record_registered(taint, gid)
                for i in positions:
                    gids[i] = gid

    def _stale_ring_backoff(self, attempt: int) -> None:
        if attempt > 0:
            time.sleep(min(0.001 * (1 << attempt), 0.05))

    def _record_registered(self, taint: Taint, gid: int) -> None:
        if self._cache_enabled:
            self._gid_cache.put(id(taint.node), (gid, taint))
            self._taint_cache.setdefault(gid, taint)
        # Paper §III-D.1: a tag's GlobalID field is set when it first
        # crosses the network (meaningful for singleton taints).
        if len(taint.tags) == 1:
            tag = next(iter(taint.tags))
            if tag.global_id == 0:
                tag.global_id = gid

    # -- receiver side (Fig. 9 steps 4-5) ---------------------------------- #

    def taint_for(self, gid: int) -> Optional[Taint]:
        """Resolve a received Global ID into a taint in *this* node's tree."""
        if gid == 0:
            return None
        if self._cache_enabled:
            cached = self._taint_cache.get(gid)
            if cached is not None:
                return cached
        serialized = self._request(
            OP_LOOKUP, struct.pack(">I", gid), self._shard_for_gid(gid)
        )
        taint = self._record_resolved(gid, serialized)
        return taint

    def taints_for(self, gids: Sequence[int]) -> list[Optional[Taint]]:
        """Local taints for a batch of Global IDs, resolving all cache
        misses in one ``OP_LOOKUP_MANY`` round-trip per shard (sub-batches
        issued concurrently — receivers route by the GID's shard bits)."""
        taints: list[Optional[Taint]] = [None] * len(gids)
        misses: dict[int, list[int]] = {}
        for i, gid in enumerate(gids):
            if gid == 0:
                continue
            if self._cache_enabled:
                cached = self._taint_cache.get(gid)
                if cached is not None:
                    taints[i] = cached
                    continue
            misses.setdefault(gid, []).append(i)
        if misses:
            by_shard: dict[int, list[int]] = {}
            for gid in misses:
                by_shard.setdefault(self._shard_for_gid(gid), []).append(gid)
            calls, chunks = [], []
            for shard, pending in by_shard.items():
                for chunk in _protocol_chunks(pending):
                    calls.append((shard, OP_LOOKUP_MANY, _pack_batch_lookup(chunk)))
                    chunks.append(chunk)
                    self._observe_batch(OP_LOOKUP_MANY, len(chunk))
            responses = self._request_by_shard(calls)
            for chunk, response in zip(chunks, responses):
                for gid, serialized in zip(
                    chunk, _split_batch_lookup_response(response, len(chunk))
                ):
                    taint = self._record_resolved(gid, serialized)
                    for i in misses[gid]:
                        taints[i] = taint
        return taints

    def _record_resolved(self, gid: int, serialized: bytes) -> Taint:
        tags = deserialize_tags(serialized)
        taint = self._node.tree.taint_for_tags(tags)
        if self._cache_enabled:
            self._taint_cache.put(gid, taint)
            self._gid_cache.setdefault(id(taint.node), (gid, taint))
        return taint

    def close(self) -> None:
        self._drop_pools()
        # Detach the cache collector: a detached client must not keep
        # reporting (or keep itself alive) through the node's registry.
        if self._metrics is not None:
            self._metrics.unregister_collector(self._cache_samples)
