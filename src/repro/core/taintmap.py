"""The Taint Map service (paper §III-D, Fig. 9).

An independent process that every node can reach, keeping the bijection
*global taint ⇄ Global ID*.  It exists to solve two problems:

* **bandwidth** — a serialized taint is 200+ bytes and grows with its tag
  count; nodes transfer the fixed 4-byte Global ID instead and consult
  the map once per distinct taint (client-side caches make repeats free —
  Fig. 9's note that b2 needs no second request);
* **mismatched length** — fixed-width IDs let the receiver size its
  enlarged buffer exactly (see :mod:`repro.core.wire`).

The server runs on its own simulated node and speaks a tiny
request/response protocol over a **raw** kernel TCP connection — its own
traffic must not pass through instrumented JNI methods, both to avoid
recursion and to keep it out of the workload's overhead accounting.

As in the paper, this is the "simplest implementation" (202 LOC there):
a single-point map, replaceable by ZooKeeper/etcd in production.
"""

from __future__ import annotations

import struct
import threading
from typing import Optional, Sequence

from repro.errors import TaintMapError
from repro.runtime.kernel import Address, SimKernel, TcpEndpoint
from repro.taint.tags import LocalId, TaintTag
from repro.taint.tree import Taint, TaintTree

OP_REGISTER = 1
OP_LOOKUP = 2
# 3 is OP_SYNC (repro.core.ha) — the HA replication op shares this
# opcode namespace through the Standby's ``_handle`` fallthrough.
OP_REGISTER_MANY = 4
OP_LOOKUP_MANY = 5

STATUS_OK = 0
STATUS_UNKNOWN_GID = 1
STATUS_BAD_REQUEST = 2

_KIND_STR = ord("s")
_KIND_INT = ord("i")
_KIND_BYTES = ord("b")


# --------------------------------------------------------------------- #
# Taint (tag set) serialization
# --------------------------------------------------------------------- #


def _encode_tag_value(value) -> tuple[int, bytes]:
    if isinstance(value, str):
        return _KIND_STR, value.encode("utf-8")
    if isinstance(value, bool):
        raise TaintMapError("boolean tag values are not supported")
    if isinstance(value, int):
        try:
            return _KIND_INT, struct.pack(">q", value)
        except struct.error as exc:
            raise TaintMapError(f"integer tag {value} exceeds 64 bits") from exc
    if isinstance(value, (bytes, bytearray)):
        return _KIND_BYTES, bytes(value)
    raise TaintMapError(
        f"tag value of type {type(value).__name__} is not wire-serializable"
    )


def _decode_tag_value(kind: int, payload: bytes):
    if kind == _KIND_STR:
        return payload.decode("utf-8")
    if kind == _KIND_INT:
        return struct.unpack(">q", payload)[0]
    if kind == _KIND_BYTES:
        return payload
    raise TaintMapError(f"unknown tag value kind {kind}")


def serialize_tags(tags: frozenset[TaintTag]) -> bytes:
    """Canonical serialization of a tag set (a *global taint*)."""
    records = []
    for tag in tags:
        kind, payload = _encode_tag_value(tag.tag)
        ip = tag.local_id.ip.encode("ascii")
        records.append(
            struct.pack(">B", len(ip))
            + ip
            + struct.pack(">IIB H", tag.local_id.pid, tag.global_id, kind, len(payload))
            + payload
        )
    records.sort()
    return struct.pack(">H", len(records)) + b"".join(records)


def taint_key(tags: frozenset[TaintTag]) -> bytes:
    """Canonical identity of a taint, ignoring per-node GlobalID fields.

    Length-prefixed structural encoding — two distinct tag sets can never
    collide, and the key does not depend on ``repr`` formatting of the
    tag values (bytes vs str vs int all encode through their wire kinds).
    """
    records = []
    for tag in tags:
        kind, payload = _encode_tag_value(tag.tag)
        ip = tag.local_id.ip.encode("ascii")
        records.append(
            struct.pack(">B", len(ip))
            + ip
            + struct.pack(">IBI", tag.local_id.pid, kind, len(payload))
            + payload
        )
    records.sort()
    return struct.pack(">H", len(records)) + b"".join(records)


def deserialize_tags(raw: bytes) -> list[TaintTag]:
    (count,) = struct.unpack(">H", raw[:2])
    pos = 2
    tags = []
    for _ in range(count):
        ip_len = raw[pos]
        pos += 1
        ip = raw[pos : pos + ip_len].decode("ascii")
        pos += ip_len
        pid, global_id, kind, payload_len = struct.unpack(">IIB H", raw[pos : pos + 11])
        pos += 11
        payload = raw[pos : pos + payload_len]
        pos += payload_len
        tags.append(
            TaintTag(_decode_tag_value(kind, payload), LocalId(ip, pid), global_id=global_id)
        )
    if pos != len(raw):
        raise TaintMapError(f"trailing bytes in serialized taint ({len(raw) - pos})")
    return tags


# --------------------------------------------------------------------- #
# Framing helpers (shared by client and server)
# --------------------------------------------------------------------- #


def _send_frame(endpoint: TcpEndpoint, head: bytes, payload: bytes) -> None:
    endpoint.send_all(head + struct.pack(">I", len(payload)) + payload)


def _recv_exact(endpoint: TcpEndpoint, n: int) -> bytes:
    out = bytearray()
    while len(out) < n:
        chunk = endpoint.recv(n - len(out))
        if not chunk:
            # Transport-level failure (distinct from protocol errors, so
            # HA clients know the replica itself is gone).
            from repro.errors import PipeClosed

            raise PipeClosed("taint map connection closed mid-frame")
        out.extend(chunk)
    return bytes(out)


def _pack_batch_register(entries: Sequence[bytes]) -> bytes:
    """``OP_REGISTER_MANY`` payload: count, then length-prefixed taints."""
    return struct.pack(">H", len(entries)) + b"".join(
        struct.pack(">I", len(entry)) + entry for entry in entries
    )


def _split_batch_register(payload: bytes) -> list[bytes]:
    (count,) = struct.unpack(">H", payload[:2])
    pos = 2
    entries = []
    for _ in range(count):
        (length,) = struct.unpack(">I", payload[pos : pos + 4])
        pos += 4
        entries.append(payload[pos : pos + length])
        pos += length
    if pos != len(payload):
        raise TaintMapError(f"trailing bytes in batch register ({len(payload) - pos})")
    return entries


def _split_batch_lookup_response(raw: bytes, count: int) -> list[bytes]:
    """``OP_LOOKUP_MANY`` response: one length-prefixed taint per GID."""
    pos = 0
    out = []
    for _ in range(count):
        (length,) = struct.unpack(">I", raw[pos : pos + 4])
        pos += 4
        out.append(raw[pos : pos + length])
        pos += length
    if pos != len(raw):
        raise TaintMapError(f"trailing bytes in batch lookup ({len(raw) - pos})")
    return out


class TaintMapStats:
    """Server-side counters (feed the §V-F scalability analysis)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.register_requests = 0
        self.lookup_requests = 0
        self.global_taints = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "register_requests": self.register_requests,
                "lookup_requests": self.lookup_requests,
                "global_taints": self.global_taints,
            }


class TaintMapServer:
    """The map service: allocates Global IDs, answers lookups."""

    def __init__(self, kernel: SimKernel, ip: str, port: int):
        self._kernel = kernel
        self.address: Address = (ip, port)
        self._listener = None
        self._lock = threading.Lock()
        self._by_key: dict[bytes, int] = {}
        self._by_gid: dict[int, bytes] = {}
        self._next_gid = 1
        self._running = False
        self._connections: list[TcpEndpoint] = []
        self.stats = TaintMapStats()

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> "TaintMapServer":
        self._listener = self._kernel.listen(*self.address)
        self._running = True
        thread = threading.Thread(target=self._accept_loop, name="taintmap", daemon=True)
        thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            self._listener.close()
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for endpoint in connections:
            endpoint.close()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                endpoint = self._listener.accept(timeout=3600)
            except Exception:
                return
            with self._lock:
                self._connections.append(endpoint)
            threading.Thread(
                target=self._serve, args=(endpoint,), name="taintmap-conn", daemon=True
            ).start()

    # -- request handling --------------------------------------------------- #

    def _serve(self, endpoint: TcpEndpoint) -> None:
        try:
            while self._running:
                head = endpoint.recv(1)
                if not head:
                    return
                (length,) = struct.unpack(">I", _recv_exact(endpoint, 4))
                payload = _recv_exact(endpoint, length) if length else b""
                status, response = self._handle(head[0], payload)
                _send_frame(endpoint, bytes([status]), response)
        except Exception:
            pass
        finally:
            endpoint.close()

    def _handle(self, op: int, payload: bytes) -> tuple[int, bytes]:
        if op == OP_REGISTER:
            with self.stats._lock:
                self.stats.register_requests += 1
            try:
                tags = frozenset(deserialize_tags(payload))
            except Exception:
                return STATUS_BAD_REQUEST, b""
            gid = self._register(tags, payload)
            return STATUS_OK, struct.pack(">I", gid)
        if op == OP_LOOKUP:
            with self.stats._lock:
                self.stats.lookup_requests += 1
            if len(payload) != 4:
                return STATUS_BAD_REQUEST, b""
            (gid,) = struct.unpack(">I", payload)
            with self._lock:
                serialized = self._by_gid.get(gid)
            if serialized is None:
                return STATUS_UNKNOWN_GID, b""
            return STATUS_OK, serialized
        if op == OP_REGISTER_MANY:
            with self.stats._lock:
                self.stats.register_requests += 1
            try:
                entries = _split_batch_register(payload)
                taint_sets = [frozenset(deserialize_tags(entry)) for entry in entries]
            except Exception:
                return STATUS_BAD_REQUEST, b""
            # One _register per entry so subclass hooks (HA replication)
            # see every registration individually.
            gids = [
                self._register(tags, entry)
                for tags, entry in zip(taint_sets, entries)
            ]
            return STATUS_OK, struct.pack(f">{len(gids)}I", *gids)
        if op == OP_LOOKUP_MANY:
            with self.stats._lock:
                self.stats.lookup_requests += 1
            try:
                (count,) = struct.unpack(">H", payload[:2])
                gids = struct.unpack(f">{count}I", payload[2:])
            except Exception:
                return STATUS_BAD_REQUEST, b""
            out = []
            with self._lock:
                for gid in gids:
                    serialized = self._by_gid.get(gid)
                    if serialized is None:
                        return STATUS_UNKNOWN_GID, struct.pack(">I", gid)
                    out.append(struct.pack(">I", len(serialized)) + serialized)
            return STATUS_OK, b"".join(out)
        return STATUS_BAD_REQUEST, b""

    def _register(self, tags: frozenset[TaintTag], serialized: bytes) -> int:
        key = taint_key(tags)
        with self._lock:
            gid = self._by_key.get(key)
            if gid is not None:
                return gid
            gid = self._next_gid
            self._next_gid += 1
            self._by_key[key] = gid
            self._by_gid[gid] = serialized
        with self.stats._lock:
            self.stats.global_taints += 1
        return gid

    # -- introspection -------------------------------------------------------- #

    def global_taint_count(self) -> int:
        with self._lock:
            return len(self._by_key)


class TaintMapClient:
    """Per-node connection to the Taint Map, with both-direction caches.

    ``cache_enabled=False`` exists only for the ablation benchmark — it
    re-registers every byte's taint, demonstrating why Fig. 9's step ②
    ("does not need to request a Global ID again") matters.
    """

    def __init__(
        self,
        node,
        address: Address,
        cache_enabled: bool = True,
    ):
        self._node = node
        self._address = address
        self._cache_enabled = cache_enabled
        self._lock = threading.Lock()
        self._endpoint: Optional[TcpEndpoint] = None
        #: taint node identity → (Global ID, taint handle).  Keyed by
        #: ``id(node)`` (not the per-tree rank, which collides between
        #: different trees when a foreign taint handle is registered).
        #: The entry holds a strong reference to the taint so its node
        #: can never be garbage-collected while cached — otherwise a
        #: reused ``id()`` could alias a dead node's Global ID.
        self._gid_cache: dict[int, tuple[int, Taint]] = {}
        #: Global ID → local Taint handle.
        self._taint_cache: dict[int, Taint] = {}
        self.requests_sent = 0

    def _connection(self) -> TcpEndpoint:
        if self._endpoint is None or self._endpoint.closed:
            self._endpoint = self._node.kernel.connect(self._node.ip, self._address)
        return self._endpoint

    def _request(self, op: int, payload: bytes) -> bytes:
        with self._lock:
            endpoint = self._connection()
            _send_frame(endpoint, bytes([op]), payload)
            status = _recv_exact(endpoint, 1)[0]
            (length,) = struct.unpack(">I", _recv_exact(endpoint, 4))
            response = _recv_exact(endpoint, length) if length else b""
            self.requests_sent += 1
        if status == STATUS_UNKNOWN_GID:
            raise TaintMapError("unknown Global ID")
        if status != STATUS_OK:
            raise TaintMapError(f"taint map rejected request (status {status})")
        return response

    # -- sender side (Fig. 9 steps 1-2) ---------------------------------- #

    def gid_for(self, taint: Optional[Taint]) -> int:
        """Global ID for a taint; 0 for the empty taint."""
        if taint is None or taint.is_empty:
            return 0
        key = id(taint.node)
        if self._cache_enabled:
            cached = self._gid_cache.get(key)
            if cached is not None:
                return cached[0]
        response = self._request(OP_REGISTER, serialize_tags(taint.tags))
        (gid,) = struct.unpack(">I", response)
        self._record_registered(taint, gid)
        return gid

    def gids_for(self, taints: Sequence[Optional[Taint]]) -> list[int]:
        """Global IDs for a batch of taints, resolving all cache misses
        in a single ``OP_REGISTER_MANY`` round-trip.

        A message whose shadow forms *k* label runs therefore costs at
        most one request on first send, and zero on resend (Fig. 9's
        "does not need to request a Global ID again", batched).
        """
        gids: list[Optional[int]] = [None] * len(taints)
        misses: dict[int, tuple[Taint, list[int]]] = {}
        for i, taint in enumerate(taints):
            if taint is None or taint.is_empty:
                gids[i] = 0
                continue
            key = id(taint.node)
            if self._cache_enabled:
                cached = self._gid_cache.get(key)
                if cached is not None:
                    gids[i] = cached[0]
                    continue
            if key in misses:
                misses[key][1].append(i)
            else:
                misses[key] = (taint, [i])
        if misses:
            pending = [taint for taint, _ in misses.values()]
            payload = _pack_batch_register(
                [serialize_tags(taint.tags) for taint in pending]
            )
            response = self._request(OP_REGISTER_MANY, payload)
            new_gids = struct.unpack(f">{len(pending)}I", response)
            for (taint, positions), gid in zip(misses.values(), new_gids):
                self._record_registered(taint, gid)
                for i in positions:
                    gids[i] = gid
        return gids  # type: ignore[return-value]

    def _record_registered(self, taint: Taint, gid: int) -> None:
        if self._cache_enabled:
            self._gid_cache[id(taint.node)] = (gid, taint)
            self._taint_cache.setdefault(gid, taint)
        # Paper §III-D.1: a tag's GlobalID field is set when it first
        # crosses the network (meaningful for singleton taints).
        if len(taint.tags) == 1:
            tag = next(iter(taint.tags))
            if tag.global_id == 0:
                tag.global_id = gid

    # -- receiver side (Fig. 9 steps 4-5) ---------------------------------- #

    def taint_for(self, gid: int) -> Optional[Taint]:
        """Resolve a received Global ID into a taint in *this* node's tree."""
        if gid == 0:
            return None
        if self._cache_enabled:
            cached = self._taint_cache.get(gid)
            if cached is not None:
                return cached
        serialized = self._request(OP_LOOKUP, struct.pack(">I", gid))
        taint = self._record_resolved(gid, serialized)
        return taint

    def taints_for(self, gids: Sequence[int]) -> list[Optional[Taint]]:
        """Local taints for a batch of Global IDs, resolving all cache
        misses in a single ``OP_LOOKUP_MANY`` round-trip."""
        taints: list[Optional[Taint]] = [None] * len(gids)
        misses: dict[int, list[int]] = {}
        for i, gid in enumerate(gids):
            if gid == 0:
                continue
            if self._cache_enabled:
                cached = self._taint_cache.get(gid)
                if cached is not None:
                    taints[i] = cached
                    continue
            misses.setdefault(gid, []).append(i)
        if misses:
            pending = list(misses)
            payload = struct.pack(f">H{len(pending)}I", len(pending), *pending)
            response = self._request(OP_LOOKUP_MANY, payload)
            for gid, serialized in zip(
                pending, _split_batch_lookup_response(response, len(pending))
            ):
                taint = self._record_resolved(gid, serialized)
                for i in misses[gid]:
                    taints[i] = taint
        return taints

    def _record_resolved(self, gid: int, serialized: bytes) -> Taint:
        tags = deserialize_tags(serialized)
        taint = self._node.tree.taint_for_tags(tags)
        if self._cache_enabled:
            self._taint_cache[gid] = taint
            self._gid_cache.setdefault(id(taint.node), (gid, taint))
        return taint

    def close(self) -> None:
        with self._lock:
            if self._endpoint is not None:
                self._endpoint.close()
                self._endpoint = None
