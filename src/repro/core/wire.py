"""DisTA's wire formats (paper §III-C/D).

Two encodings, matching the instrumentation types:

* **Cell stream** (Type 1 streams and Type 3 TCP dispatchers): every data
  byte is followed by its taint's 4-byte Global ID — the fixed-length
  design that solves the "mismatched serialized taint length" problem
  (§III-D): a receiver can consume any prefix of the stream at 5-byte
  cell granularity, so partially received messages still deserialize.
  It also pins network overhead at exactly 5× (§V-F).

* **Packet envelope** (Type 2 datagrams and the datagram-channel
  methods): datagrams are atomic, so the taints ride in a trailer —
  ``MAGIC | version | data_len | data | gid * data_len``.  A receiver
  whose buffer is smaller than the payload keeps the taints aligned
  because the envelope always arrives whole (UDP preserves boundaries).

Global ID 0 is the empty taint and never touches the Taint Map.

Implementation note: shadows are run-length encoded
(:class:`~repro.taint.values.LabelRuns`), and the codecs work directly
on runs — encoding fills one GID region per run and decoding rebuilds
runs from GID boundaries, so the Python-level cost is O(runs) and the
per-byte work is vectorized numpy, the way DisTA's JIT-compiled
instrumentation amortizes it.  When the caller supplies the batched
resolvers (``gids_for``/``taints_for``, see
:class:`~repro.core.taintmap.TaintMapClient`), all of a message's
distinct labels resolve in a single Taint Map round-trip.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import WireFormatError
from repro.taint.values import LabelRuns, TBytes

#: Width of a Global ID on the wire ("4 bytes in default", §V-F).
GID_WIDTH = 4

#: One data byte + one Global ID.
CELL_WIDTH = 1 + GID_WIDTH

#: Envelope magic for packet-oriented methods.
PACKET_MAGIC = b"\xd7\x5a"
PACKET_VERSION = 1
PACKET_HEADER = len(PACKET_MAGIC) + 1 + 4

#: ``gid_for(label)`` maps a Taint (or None) to its Global ID.
GidFor = Callable[[Optional[object]], int]
#: ``taint_for(gid)`` maps a Global ID back to a local Taint (or None).
TaintFor = Callable[[int], Optional[object]]
#: Batched variants: one call resolves every distinct label of a message.
GidsFor = Callable[[Sequence], list]
TaintsFor = Callable[[Sequence[int]], list]

class LabelResolver:
    """The codec-facing slice of a Taint Map client: the four label ↔
    Global-ID resolvers bundled as one value.

    The wrappers hand this to the codecs instead of individual
    callables, so the whole resolution path — including the transport
    behind it (pooled threads or the async multiplexed client with
    cross-message coalescing, :mod:`repro.core.aio_transport`) — is
    swappable in one place.  Every codec below also still accepts the
    bare callables for backwards compatibility.
    """

    __slots__ = ("gid_for", "gids_for", "taint_for", "taints_for")

    def __init__(
        self,
        gid_for: GidFor,
        taint_for: TaintFor,
        gids_for: Optional[GidsFor] = None,
        taints_for: Optional[TaintsFor] = None,
    ):
        self.gid_for = gid_for
        self.taint_for = taint_for
        self.gids_for = gids_for
        self.taints_for = taints_for

    @classmethod
    def for_client(cls, client) -> "LabelResolver":
        """Resolvers bound to a Taint Map client's batched methods."""
        return cls(
            client.gid_for, client.taint_for, client.gids_for, client.taints_for
        )


def _gid_resolvers(gid_for, gids_for):
    if isinstance(gid_for, LabelResolver):
        return gid_for.gid_for, gid_for.gids_for
    return gid_for, gids_for


def _taint_resolvers(taint_for, taints_for):
    if isinstance(taint_for, LabelResolver):
        return taint_for.taint_for, taint_for.taints_for
    return taint_for, taints_for


_GID_BE = np.dtype(">u4")
#: One wire cell as a structured scalar: decoding views the byte stream
#: through this dtype directly — a single contiguous read, no
#: reshape/copy/view dance.
_CELL_DTYPE = np.dtype([("data", np.uint8), ("gid", _GID_BE)])
assert _CELL_DTYPE.itemsize == CELL_WIDTH


def _coerce_runs(length: int, labels) -> Optional[LabelRuns]:
    if labels is None or isinstance(labels, LabelRuns):
        return labels
    return LabelRuns.from_list(labels)


def _resolve_gids(labels: LabelRuns, gid_for: GidFor, gids_for: Optional[GidsFor]) -> dict:
    """Map each distinct run label (by identity) to its Global ID."""
    unique = labels.unique_labels()
    if gids_for is not None:
        gids = gids_for(unique)
    else:
        gids = [gid_for(label) for label in unique]
    return {id(label): gid for label, gid in zip(unique, gids)}


def _gid_array(
    length: int, labels, gid_for: GidFor, gids_for: Optional[GidsFor] = None
) -> np.ndarray:
    """Per-byte Global IDs as a big-endian u32 array, filled per run."""
    gids = np.zeros(length, dtype=_GID_BE)
    labels = _coerce_runs(length, labels)
    if labels is None or not labels.has_labels():
        return gids
    mapping = _resolve_gids(labels, gid_for, gids_for)
    for start, end, label in labels.runs:
        gid = mapping[id(label)]
        if gid:
            gids[start:end] = gid
    return gids


def _label_runs(
    gids: np.ndarray, taint_for: TaintFor, taints_for: Optional[TaintsFor] = None
) -> Optional[LabelRuns]:
    """Shadow runs from a per-byte GID array.

    Run boundaries come from GID changes; each distinct GID resolves
    once (one batched round-trip when ``taints_for`` is supplied).
    Returns ``None`` when every GID is 0 (untainted payload).
    """
    if not gids.any():
        return None
    n = int(gids.shape[0])
    boundaries = (np.flatnonzero(gids[1:] != gids[:-1]) + 1).tolist()
    starts = [0] + boundaries
    ends = boundaries + [n]
    run_gids = [int(gids[s]) for s in starts]
    unique = sorted({g for g in run_gids if g})
    if taints_for is not None:
        mapping = dict(zip(unique, taints_for(unique)))
    else:
        mapping = {g: taint_for(g) for g in unique}
    return LabelRuns(
        n, ((s, e, mapping[g]) for s, e, g in zip(starts, ends, run_gids) if g)
    )


def encode_cells(
    data: TBytes, gid_for: Union[GidFor, LabelResolver], gids_for: Optional[GidsFor] = None
) -> bytes:
    """Serialize data + per-byte labels into a 5-byte cell stream.

    ``gid_for`` may be a :class:`LabelResolver` in place of the bare
    callables (the wrapper-facing form)."""
    gid_for, gids_for = _gid_resolvers(gid_for, gids_for)
    length = len(data)
    if length == 0:
        return b""
    labels = _coerce_runs(length, data.labels)
    if labels is None or not labels.has_labels():
        # Zero-taint fast path: every GID is 0, so the frame is just the
        # data column scattered into a zeroed cell grid — no per-byte
        # GID array, no resolver call, no Taint Map round-trip.  The
        # result is byte-identical to the general path below.
        out = np.zeros((length, CELL_WIDTH), dtype=np.uint8)
        out[:, 0] = np.frombuffer(data.data, dtype=np.uint8)
        return out.tobytes()
    out = np.empty((length, CELL_WIDTH), dtype=np.uint8)
    out[:, 0] = np.frombuffer(data.data, dtype=np.uint8)
    out[:, 1:] = (
        _gid_array(length, labels, gid_for, gids_for)
        .view(np.uint8)
        .reshape(length, GID_WIDTH)
    )
    return out.tobytes()


class CellDecoder:
    """Stateful cell-stream decoder: tolerates arbitrary read boundaries.

    The kernel delivers whatever byte counts it likes; whole cells are
    decoded and partial trailing cells are kept as residue for the next
    ``feed`` — this is DisTA's receiver-side answer to partial reads.
    """

    def __init__(self) -> None:
        #: Partial-cell bytes pending completion.  A mutable buffer so a
        #: feed with residue appends in amortized O(1) and trims in
        #: place, instead of re-copying ``residue + wire`` into a fresh
        #: bytes object on every call while a partial cell is pending.
        self._buffer = bytearray()

    def feed(
        self,
        wire: bytes,
        taint_for: Union[TaintFor, LabelResolver],
        taints_for: Optional[TaintsFor] = None,
    ) -> TBytes:
        """Decode every complete cell in ``residue + wire``.

        ``taint_for`` may be a :class:`LabelResolver`."""
        taint_for, taints_for = _taint_resolvers(taint_for, taints_for)
        buffered = bool(self._buffer)
        if buffered:
            self._buffer += wire
            stream: Union[bytes, bytearray] = self._buffer
        else:
            stream = wire
        cells = len(stream) // CELL_WIDTH
        if cells == 0:
            if not buffered:
                self._buffer += wire
            return TBytes.empty()
        body = np.frombuffer(stream, dtype=_CELL_DTYPE, count=cells)
        data = body["data"].tobytes()
        # All-zero GID columns mean an untainted payload: _label_runs
        # returns None and no taint resolution happens (the decode-side
        # zero-taint fast path).
        labels = _label_runs(body["gid"], taint_for, taints_for)
        consumed = cells * CELL_WIDTH
        # Release the numpy view before resizing: a bytearray refuses to
        # shrink while a buffer export is live.
        del body
        if buffered:
            del self._buffer[:consumed]
        elif consumed < len(wire):
            self._buffer += wire[consumed:]
        if labels is None:
            return TBytes.raw(data)
        return TBytes(data, labels)

    @property
    def residue_len(self) -> int:
        return len(self._buffer)

    def check_clean_eof(self) -> None:
        """EOF with a partial cell buffered means a truncated stream."""
        if self._buffer:
            raise WireFormatError(
                f"stream ended inside a cell ({len(self._buffer)} residual bytes)"
            )


def wire_length(data_length: int) -> int:
    """Wire bytes needed to carry ``data_length`` data bytes as cells."""
    return data_length * CELL_WIDTH


def max_data_for_wire(wire_budget: int) -> int:
    """Data bytes representable within ``wire_budget`` wire bytes."""
    return wire_budget // CELL_WIDTH


def encode_packet(
    data: TBytes, gid_for: Union[GidFor, LabelResolver], gids_for: Optional[GidsFor] = None
) -> bytes:
    """Serialize one datagram payload + taints into an envelope.

    ``gid_for`` may be a :class:`LabelResolver`."""
    gid_for, gids_for = _gid_resolvers(gid_for, gids_for)
    length = len(data)
    header = PACKET_MAGIC + bytes([PACKET_VERSION]) + struct.pack(">I", length)
    labels = _coerce_runs(length, data.labels)
    if labels is None or not labels.has_labels():
        # Zero-taint fast path: the GID trailer is all zeroes — emit it
        # directly, byte-identical to the general path below.
        return header + data.data + bytes(length * GID_WIDTH)
    gids = _gid_array(length, labels, gid_for, gids_for)
    return header + data.data + gids.tobytes()


def is_enveloped(raw: bytes) -> bool:
    return raw[: len(PACKET_MAGIC)] == PACKET_MAGIC


def decode_packet(
    raw: bytes,
    taint_for: Union[TaintFor, LabelResolver],
    taints_for: Optional[TaintsFor] = None,
) -> TBytes:
    """Parse an envelope back into labelled bytes.

    ``taint_for`` may be a :class:`LabelResolver`.  Raises
    :class:`WireFormatError` on malformed envelopes; callers that
    want uninstrumented-sender interop should check :func:`is_enveloped`
    first and fall back to treating the payload as plain data.
    """
    taint_for, taints_for = _taint_resolvers(taint_for, taints_for)
    if not is_enveloped(raw):
        raise WireFormatError("datagram payload lacks the DisTA envelope magic")
    version = raw[len(PACKET_MAGIC)]
    if version != PACKET_VERSION:
        raise WireFormatError(f"unsupported envelope version {version}")
    (length,) = struct.unpack(">I", raw[len(PACKET_MAGIC) + 1 : PACKET_HEADER])
    expected = PACKET_HEADER + length * CELL_WIDTH
    if len(raw) < expected:
        raise WireFormatError(
            f"envelope truncated: {len(raw)} bytes, header promises {expected}"
        )
    data = raw[PACKET_HEADER : PACKET_HEADER + length]
    gid_area = raw[PACKET_HEADER + length : expected]
    gids = np.frombuffer(gid_area, dtype=_GID_BE)
    labels = _label_runs(gids, taint_for, taints_for)
    if labels is None:
        return TBytes.raw(data)
    return TBytes(data, labels)


def envelope_length(data_length: int) -> int:
    return PACKET_HEADER + data_length * CELL_WIDTH
