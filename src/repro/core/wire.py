"""DisTA's wire formats (paper §III-C/D).

Two encodings, matching the instrumentation types:

* **Cell stream** (Type 1 streams and Type 3 TCP dispatchers): every data
  byte is followed by its taint's 4-byte Global ID — the fixed-length
  design that solves the "mismatched serialized taint length" problem
  (§III-D): a receiver can consume any prefix of the stream at 5-byte
  cell granularity, so partially received messages still deserialize.
  It also pins network overhead at exactly 5× (§V-F).

* **Packet envelope** (Type 2 datagrams and the datagram-channel
  methods): datagrams are atomic, so the taints ride in a trailer —
  ``MAGIC | version | data_len | data | gid * data_len``.  A receiver
  whose buffer is smaller than the payload keeps the taints aligned
  because the envelope always arrives whole (UDP preserves boundaries).

Global ID 0 is the empty taint and never touches the Taint Map.

Implementation note: the codecs vectorize with numpy over *runs* of
identical labels (real messages taint long byte runs with one taint), so
the simulated encode/decode cost scales the way DisTA's JIT-compiled
instrumentation does rather than paying Python interpreter cost per byte.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

import numpy as np

from repro.errors import WireFormatError
from repro.taint.values import TBytes

#: Width of a Global ID on the wire ("4 bytes in default", §V-F).
GID_WIDTH = 4

#: One data byte + one Global ID.
CELL_WIDTH = 1 + GID_WIDTH

#: Envelope magic for packet-oriented methods.
PACKET_MAGIC = b"\xd7\x5a"
PACKET_VERSION = 1
PACKET_HEADER = len(PACKET_MAGIC) + 1 + 4

#: ``gid_for(label)`` maps a Taint (or None) to its Global ID.
GidFor = Callable[[Optional[object]], int]
#: ``taint_for(gid)`` maps a Global ID back to a local Taint (or None).
TaintFor = Callable[[int], Optional[object]]


def _gid_array(length: int, labels, gid_for: GidFor) -> np.ndarray:
    """Per-byte Global IDs as a big-endian u32 array, by label runs."""
    gids = np.zeros(length, dtype=">u4")
    if labels is None:
        return gids
    i = 0
    while i < length:
        label = labels[i]
        j = i + 1
        while j < length and labels[j] is label:
            j += 1
        if label is not None:
            gids[i:j] = gid_for(label)
        i = j
    return gids


def _labels_list(gids: np.ndarray, taint_for: TaintFor) -> Optional[list]:
    """Per-byte labels from a GID array, resolving each GID once."""
    if not gids.any():
        return None
    unique = np.unique(gids)
    mapping = {int(g): (None if g == 0 else taint_for(int(g))) for g in unique}
    if len(mapping) == 1:
        return [mapping[int(unique[0])]] * len(gids)
    return [mapping[g] for g in gids.tolist()]


def encode_cells(data: TBytes, gid_for: GidFor) -> bytes:
    """Serialize data + per-byte labels into a 5-byte cell stream."""
    length = len(data)
    if length == 0:
        return b""
    out = np.empty((length, CELL_WIDTH), dtype=np.uint8)
    out[:, 0] = np.frombuffer(data.data, dtype=np.uint8)
    out[:, 1:] = _gid_array(length, data.labels, gid_for).view(np.uint8).reshape(length, GID_WIDTH)
    return out.tobytes()


class CellDecoder:
    """Stateful cell-stream decoder: tolerates arbitrary read boundaries.

    The kernel delivers whatever byte counts it likes; whole cells are
    decoded and partial trailing cells are kept as residue for the next
    ``feed`` — this is DisTA's receiver-side answer to partial reads.
    """

    def __init__(self) -> None:
        self._residue = b""

    def feed(self, wire: bytes, taint_for: TaintFor) -> TBytes:
        """Decode every complete cell in ``residue + wire``."""
        stream = self._residue + wire
        cells = len(stream) // CELL_WIDTH
        self._residue = stream[cells * CELL_WIDTH :]
        if cells == 0:
            return TBytes.empty()
        body = np.frombuffer(stream[: cells * CELL_WIDTH], dtype=np.uint8).reshape(
            cells, CELL_WIDTH
        )
        data = body[:, 0].tobytes()
        gids = body[:, 1:].copy().view(">u4").reshape(cells)
        labels = _labels_list(gids, taint_for)
        if labels is None:
            return TBytes.raw(data)
        return TBytes(data, labels)

    @property
    def residue_len(self) -> int:
        return len(self._residue)

    def check_clean_eof(self) -> None:
        """EOF with a partial cell buffered means a truncated stream."""
        if self._residue:
            raise WireFormatError(
                f"stream ended inside a cell ({len(self._residue)} residual bytes)"
            )


def wire_length(data_length: int) -> int:
    """Wire bytes needed to carry ``data_length`` data bytes as cells."""
    return data_length * CELL_WIDTH


def max_data_for_wire(wire_budget: int) -> int:
    """Data bytes representable within ``wire_budget`` wire bytes."""
    return wire_budget // CELL_WIDTH


def encode_packet(data: TBytes, gid_for: GidFor) -> bytes:
    """Serialize one datagram payload + taints into an envelope."""
    gids = _gid_array(len(data), data.labels, gid_for)
    return (
        PACKET_MAGIC
        + bytes([PACKET_VERSION])
        + struct.pack(">I", len(data))
        + data.data
        + gids.tobytes()
    )


def is_enveloped(raw: bytes) -> bool:
    return raw[: len(PACKET_MAGIC)] == PACKET_MAGIC


def decode_packet(raw: bytes, taint_for: TaintFor) -> TBytes:
    """Parse an envelope back into labelled bytes.

    Raises :class:`WireFormatError` on malformed envelopes; callers that
    want uninstrumented-sender interop should check :func:`is_enveloped`
    first and fall back to treating the payload as plain data.
    """
    if not is_enveloped(raw):
        raise WireFormatError("datagram payload lacks the DisTA envelope magic")
    version = raw[len(PACKET_MAGIC)]
    if version != PACKET_VERSION:
        raise WireFormatError(f"unsupported envelope version {version}")
    (length,) = struct.unpack(">I", raw[len(PACKET_MAGIC) + 1 : PACKET_HEADER])
    expected = PACKET_HEADER + length * CELL_WIDTH
    if len(raw) < expected:
        raise WireFormatError(
            f"envelope truncated: {len(raw)} bytes, header promises {expected}"
        )
    data = raw[PACKET_HEADER : PACKET_HEADER + length]
    gid_area = raw[PACKET_HEADER + length : expected]
    gids = np.frombuffer(gid_area, dtype=">u4")
    labels = _labels_list(gids, taint_for)
    if labels is None:
        return TBytes.raw(data)
    return TBytes(data, labels)


def envelope_length(data_length: int) -> int:
    return PACKET_HEADER + data_length * CELL_WIDTH
