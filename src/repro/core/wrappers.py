"""The three JNI wrapper types (paper §III-C, Figs. 6–8).

The agent patches a node's :class:`~repro.jre.jni.JniTable` with the
closures built here.  Senders combine message bytes with their taints
(as Global-ID cells or packet envelopes) and push them through the
*original* JNI method; receivers invoke the original method into an
enlarged buffer and split the result back into data and taints.

* **Type 1 — stream oriented** (``socketRead0``/``socketWrite0``): the
  TCP byte stream becomes a stream of 5-byte cells; a per-fd
  :class:`~repro.core.wire.CellDecoder` absorbs arbitrary read
  boundaries.
* **Type 2 — packet oriented** (``send``/``receive0``/``peekData``):
  each datagram is re-wrapped in a fresh packet carrying the envelope —
  the original packet object is never mutated on the send path, because
  the application may keep using it (Fig. 7's note).
* **Type 3 — direct buffer oriented** (dispatcher read/write families +
  ``DirectByteBuffer`` get/put): native memory gets a shadow label array
  keyed by block address; get/put move labels between heap and shadow,
  and the dispatchers translate shadow ↔ wire cells.
"""

from __future__ import annotations

import threading
import weakref
from time import perf_counter
from typing import Optional

from repro.core import wire
from repro.core.taintmap import TaintMapClient
from repro.core.trace import NULL_TRACE
from repro.errors import WireFormatError
from repro.obs.lineage import NULL_LINEAGE
from repro.jre.jni import EOF, UNAVAILABLE
from repro.jre.buffer import NativeMemory
from repro.jre.datagram_api import DatagramPacket
from repro.runtime.kernel import MAX_DATAGRAM
from repro.taint.values import LabelRuns, TByteArray, TBytes


class DisTARuntime:
    """Per-node runtime state shared by all wrappers on one JVM."""

    def __init__(
        self,
        node,
        client: TaintMapClient,
        byte_granularity: bool = True,
        trace=NULL_TRACE,
        transport: str = "pooled",
    ):
        self.node = node
        self.client = client
        #: Every wrapper resolves labels through this bundle, so the
        #: transport behind it (pooled threads vs the async multiplexed
        #: client) is swappable without touching wrapper code.
        self.resolver = wire.LabelResolver.for_client(client)
        #: Which transport the agent selected ("pooled" or "async").
        self.transport = transport
        #: False only in the granularity ablation: whole-message tainting.
        self.byte_granularity = byte_granularity
        #: Optional CrossingTrace recording tainted boundary crossings.
        self.trace = trace
        #: Per-node LineageRecorder (NULL_LINEAGE when lineage is off;
        #: its ``enabled`` False short-circuits every hook below).
        self.lineage = NULL_LINEAGE
        #: Optional OverheadBudgetController (budgeted tracking).  When
        #: ``None`` — the default, and always the case with an
        #: unlimited budget — every budget hook below is skipped and
        #: behaviour is bit-identical to unbudgeted tracking.
        self._budget = None
        self._lock = threading.Lock()
        self._decoders: dict[int, wire.CellDecoder] = {}
        #: (method, direction) -> bound metric children; record_io runs
        #: on every crossing, so the labels() lookups are done once.
        self._io_children: dict = {}
        #: Wrapper-boundary telemetry (None for bare test nodes).
        self.metrics = getattr(node, "metrics", None)
        self._io_calls = None
        self._io_bytes = None
        self._io_tainted = None
        self._crossings = None
        self._fastpath = None
        if self.metrics is not None:
            self._io_calls = self.metrics.counter(
                "dista_jni_calls_total",
                "Wrapped JNI method invocations.",
                ("method", "direction"),
            )
            self._io_bytes = self.metrics.counter(
                "dista_jni_bytes_total",
                "Payload bytes through wrapped JNI methods.",
                ("method", "direction"),
            )
            self._io_tainted = self.metrics.counter(
                "dista_jni_tainted_bytes_total",
                "Tainted payload bytes through wrapped JNI methods "
                "(divide by dista_jni_bytes_total for the per-method ratio).",
                ("method", "direction"),
            )
            self._crossings = self.metrics.counter(
                "dista_crossings_total",
                "Tainted boundary crossings observed at the wrappers.",
                ("direction",),
            )
            self._fastpath = self.metrics.counter(
                "dista_fastpath_total",
                "Crossings by taint-state-specialized codec path: fast = "
                "zero-taint short circuit (no GID array, no resolver "
                "call, no Taint Map round-trip), slow = shadow codec "
                "engaged.",
                ("site", "path"),
            )
            # Pre-declare the transport-side families (the async client
            # populates them) so /metrics has the same shape under both
            # transports — zero-valued rather than absent under pooled.
            flush = self.metrics.counter(
                "dista_coalesce_flush_total",
                "Coalescing-window flushes by trigger (size/timer/backpressure).",
                ("reason",),
            )
            for reason in ("size", "timer", "backpressure"):
                flush.labels(reason=reason)
            self.metrics.histogram(
                "dista_coalesce_window_entries",
                "Entries per flushed coalescing window.",
                (),
                lowest=1.0,
                buckets=16,
            )
            backpressure = self.metrics.counter(
                "dista_coalesce_backpressure_total",
                "Entries gated at a shard's pending-window high-water mark.",
                ("action",),
            )
            for action in ("block", "shed"):
                backpressure.labels(action=action)
            self.metrics.gauge(
                "dista_coalesce_window_us",
                "Current coalescing window per shard in microseconds "
                "(driven by the AIMD controller when adaptive).",
                ("shard",),
            )
            self.metrics.gauge(
                "dista_taintmap_inflight_requests",
                "Requests in flight on the multiplexed Taint Map connections.",
            )

    def record_io(self, direction: str, method: str, data, channel=None) -> None:
        """One wrapper-boundary event: telemetry plus the crossing trace.

        ``channel`` names the wire channel (see ``TcpEndpoint.send_channel``)
        so the trace can correlate this send with its receive into a span.
        """
        budget = self._budget
        if self._io_calls is not None or budget is not None:
            total = len(data)
            tainted = (
                data.tainted_byte_count()
                if hasattr(data, "tainted_byte_count")
                else 0
            )
        if budget is not None:
            budget.account_io(method, direction, total, tainted)
        if self._io_calls is not None:
            children = self._io_children.get((method, direction))
            if children is None:
                children = (
                    self._io_calls.labels(method=method, direction=direction),
                    self._io_bytes.labels(method=method, direction=direction),
                    self._io_tainted.labels(method=method, direction=direction),
                    self._crossings.labels(direction=direction),
                    self._fastpath.labels(site=method, path="fast"),
                    self._fastpath.labels(site=method, path="slow"),
                )
                self._io_children[(method, direction)] = children
            calls, io_bytes, io_tainted, crossings, fast, slow = children
            calls.inc()
            io_bytes.inc(total)
            io_tainted.inc(tainted)
            if tainted:
                crossings.inc()
            # Which codec path this crossing's payload dispatches to:
            # the predicate mirrors the one in the wire codecs.
            labels = getattr(data, "labels", None)
            if labels is None or not labels.has_labels():
                fast.inc()
            else:
                slow.inc()
        self.trace.record(self.node.name, direction, method, data, channel=channel)

    def attach_budget(self, controller) -> None:
        """Wire an OverheadBudgetController into this runtime.

        Replaces the resolver with a facade that times the **taint→GID
        (encode) direction** — GID registration and its Taint Map
        round-trips, the marginal cost this node *originates* by
        sending labels — and feeds it to the controller.  The GID→taint
        (decode) direction is deliberately untimed: a receiver has no
        actuator for the labels someone else put on the wire, so that
        cost is attributed to (and shed by) the *sender's* controller —
        gating a sender strips its labels and zeroes every downstream
        receiver's decode cost cluster-wide.  Each cost has exactly one
        responsible controller; nothing is double-counted.  The fast
        path never calls the resolver, so untainted and sampled-out
        traffic contribute zero.
        """
        self._budget = controller
        add_seconds = controller.add_tracking_seconds

        def timed(fn):
            if fn is None:
                return None

            def call(arg):
                started = perf_counter()
                try:
                    return fn(arg)
                finally:
                    add_seconds(perf_counter() - started)

            return call

        base = self.resolver
        self.resolver = wire.LabelResolver(
            timed(base.gid_for),
            base.taint_for,
            timed(base.gids_for),
            base.taints_for,
        )

    def outgoing(self, data: TBytes, method: Optional[str] = None) -> TBytes:
        """Apply gating and the configured granularity to outgoing data.

        ``method`` is the sender's ``record_io`` name; when the budget
        controller has gated it, labels are stripped so the data (and
        every downstream receiver) dispatches through the zero-taint
        fast path — the wire frames are byte-identical to untainted
        traffic, so "untracked" costs the same as "untainted".
        """
        # Zero-taint fast path: untainted data is identical under both
        # granularities, so skip the overall-taint fold entirely.
        if data.labels is None:
            return data
        budget = self._budget
        if budget is not None and method is not None and budget.is_gated(method):
            # The gate strips labels: the flow continues untracked.
            # Lineage marks the cut explicitly (a partial tree), so a
            # gated flow is never silently missing; the fast-path check
            # above guarantees this never runs on zero-taint traffic.
            if self.lineage.enabled:
                self.lineage.gated_event(method, data)
            return TBytes.raw(data.data)
        if self.byte_granularity:
            return data
        overall = data.overall_taint()
        if overall is None:
            return data
        return TBytes.tainted(data.data, overall)

    # -- cell-stream state -------------------------------------------------- #

    def decoder_for(self, fd) -> wire.CellDecoder:
        key = id(fd)
        with self._lock:
            decoder = self._decoders.get(key)
            if decoder is not None:
                return decoder
            decoder = wire.CellDecoder()
            self._decoders[key] = decoder
        # Outside the lock: registration may fire the eviction callback
        # immediately when the fd is already closed.
        self._register_eviction(fd, key, decoder)
        return decoder

    def _evict_decoder(self, key: int, decoder: wire.CellDecoder) -> None:
        with self._lock:
            if self._decoders.get(key) is decoder:
                del self._decoders[key]

    def _register_eviction(self, fd, key: int, decoder: wire.CellDecoder) -> None:
        """Evict the per-fd decoder when ``fd`` closes or is collected.

        ``_decoders`` is keyed by ``id(fd)`` and CPython recycles ids: a
        decoder left behind by a dead fd would hand its stale residue to
        an unrelated future connection (the same bug class as the PR 1
        ``_gid_cache`` collision).  The identity check in
        ``_evict_decoder`` keeps a late finalizer from evicting a
        successor fd's decoder after an id is reused.
        """
        add_callback = getattr(fd, "add_close_callback", None)
        if add_callback is not None:
            add_callback(lambda: self._evict_decoder(key, decoder))
        try:
            weakref.finalize(fd, self._evict_decoder, key, decoder)
        except TypeError:
            # Not weak-referenceable: close-callback eviction (if any)
            # still applies; bare test doubles keep the old behaviour.
            pass

    # -- native-memory shadow ------------------------------------------------ #

    def shadow_for(self, mem: NativeMemory) -> LabelRuns:
        shadow = self.node.jni.native_shadow.get(mem.address)
        if shadow is None:
            shadow = LabelRuns(mem.size)
            self.node.jni.native_shadow[mem.address] = shadow
        return shadow

    def native_read(self, mem: NativeMemory, position: int, count: int) -> TBytes:
        """Bytes + shadow labels from native memory."""
        shadow = self.node.jni.native_shadow.get(mem.address)
        if shadow is None or not shadow.has_labels():
            # Zero-taint fast path: clean memory yields untainted bytes
            # without slicing an empty shadow.
            return TBytes.raw(mem.read(position, count))
        return TBytes(mem.read(position, count), shadow.slice(position, position + count))

    def native_write(self, mem: NativeMemory, position: int, data: TBytes) -> None:
        """Bytes into native memory, labels into its shadow."""
        mem.write(position, data.data)
        labels = data.labels
        if labels is None or not labels.has_labels():
            # Zero-taint fast path: an untainted write into never-tainted
            # memory must not materialize a shadow via shadow_for; only
            # scrub the range when labelled bytes already live there.
            shadow = self.node.jni.native_shadow.get(mem.address)
            if shadow is not None and shadow.has_labels():
                shadow[position : position + len(data)] = LabelRuns(len(data))
            return
        shadow = self.shadow_for(mem)
        shadow[position : position + len(data)] = labels


# --------------------------------------------------------------------- #
# Type 1: stream oriented
# --------------------------------------------------------------------- #


def make_socket_write0(runtime: DisTARuntime):
    def wrapper(original):
        def socket_write0(fd, data: TBytes) -> None:
            runtime.record_io("send", "socketWrite0", data, channel=fd.send_channel)
            cells = wire.encode_cells(
                runtime.outgoing(data, "socketWrite0"), runtime.resolver
            )
            original(fd, TBytes.raw(cells))

        return socket_write0

    return wrapper


def make_socket_read0(runtime: DisTARuntime):
    def wrapper(original):
        def socket_read0(fd, buf: TByteArray, offset: int, length: int, timeout=None) -> int:
            length = min(length, len(buf) - offset)
            decoder = runtime.decoder_for(fd)
            staging = TByteArray.raw(wire.wire_length(length))
            while True:
                kwargs = {} if timeout is None else {"timeout": timeout}
                count = original(fd, staging, 0, len(staging), **kwargs)
                if count == EOF:
                    decoder.check_clean_eof()
                    return EOF
                decoded = decoder.feed(
                    staging.read(0, count).data, runtime.resolver
                )
                if decoded:
                    runtime.record_io(
                        "receive", "socketRead0", decoded, channel=fd.receive_channel
                    )
                    buf.write(offset, decoded)
                    return len(decoded)
                # A partial cell arrived; keep blocking until a whole
                # cell (the receiver-side fix for mismatched lengths).

        return socket_read0

    return wrapper


def make_socket_available(runtime: DisTARuntime):
    def wrapper(original):
        def socket_available(fd) -> int:
            decoder = runtime.decoder_for(fd)
            return (original(fd) + decoder.residue_len) // wire.CELL_WIDTH

        return socket_available

    return wrapper


# --------------------------------------------------------------------- #
# Type 2: packet oriented
# --------------------------------------------------------------------- #


def _check_envelope_fits(data_length: int) -> None:
    if wire.envelope_length(data_length) > MAX_DATAGRAM:
        raise WireFormatError(
            f"datagram payload of {data_length} bytes cannot carry its taint "
            f"envelope within {MAX_DATAGRAM} bytes; send smaller datagrams"
        )


def make_datagram_send(runtime: DisTARuntime):
    def wrapper(original):
        def datagram_send(fd, packet: DatagramPacket) -> None:
            runtime.record_io(
                "send",
                "datagram.send",
                packet.payload(),
                channel=("udp", tuple(packet.socket_address())),
            )
            payload = runtime.outgoing(packet.payload(), "datagram.send")
            _check_envelope_fits(len(payload))
            envelope = wire.encode_packet(
                payload, runtime.resolver
            )
            # A fresh packet: mutating the caller's packet could change
            # application semantics (paper Fig. 7).
            wrapped = DatagramPacket(TBytes.raw(envelope), address=packet.socket_address())
            original(fd, wrapped)

        return datagram_send

    return wrapper


def _decode_incoming_datagram(runtime: DisTARuntime, raw: TBytes) -> TBytes:
    if wire.is_enveloped(raw.data):
        return wire.decode_packet(raw.data, runtime.resolver)
    # Uninstrumented sender: plain payload, no taints to recover.
    return TBytes(raw.data)


def make_datagram_receive0(runtime: DisTARuntime):
    def wrapper(original):
        def datagram_receive0(fd, packet: DatagramPacket, timeout=None) -> None:
            staging = DatagramPacket(TByteArray.raw(MAX_DATAGRAM))
            kwargs = {} if timeout is None else {"timeout": timeout}
            original(fd, staging, **kwargs)
            decoded = _decode_incoming_datagram(runtime, staging.payload())
            runtime.record_io(
                "receive", "datagram.receive0", decoded, channel=("udp", tuple(fd.address))
            )
            packet.fill_from_wire(decoded, staging.address)

        return datagram_receive0

    return wrapper


def make_datagram_peek_data(runtime: DisTARuntime):
    def wrapper(original):
        def datagram_peek_data(fd, packet: DatagramPacket, timeout=None) -> int:
            staging = DatagramPacket(TByteArray.raw(MAX_DATAGRAM))
            kwargs = {} if timeout is None else {"timeout": timeout}
            port = original(fd, staging, **kwargs)
            decoded = _decode_incoming_datagram(runtime, staging.payload())
            packet.fill_from_wire(decoded, staging.address)
            return port

        return datagram_peek_data

    return wrapper


# --------------------------------------------------------------------- #
# Type 3: direct buffer oriented
# --------------------------------------------------------------------- #


def make_direct_put(runtime: DisTARuntime):
    def wrapper(original):
        def direct_put(mem: NativeMemory, position: int, src: TBytes) -> None:
            original(mem, position, src)
            labels = src.labels
            if labels is None or not labels.has_labels():
                # Zero-taint fast path: don't materialize a shadow for a
                # clean put; scrub only if labelled bytes already exist.
                shadow = runtime.node.jni.native_shadow.get(mem.address)
                if shadow is not None and shadow.has_labels():
                    shadow[position : position + len(src)] = LabelRuns(len(src))
                return
            # Splice the run representation directly — O(runs), not the
            # O(bytes) per-byte list effective_labels() would build.
            shadow = runtime.shadow_for(mem)
            shadow[position : position + len(src)] = labels

        return direct_put

    return wrapper


def make_direct_get(runtime: DisTARuntime):
    def wrapper(original):
        def direct_get(
            mem: NativeMemory, position: int, dst: TByteArray, dst_offset: int, length: int
        ) -> None:
            original(mem, position, dst, dst_offset, length)
            shadow = runtime.node.jni.native_shadow.get(mem.address)
            if shadow is None:
                return
            piece = shadow[position : position + length]
            if not piece.has_labels() and dst.labels is None:
                # Zero-taint fast path: nothing to transfer, nothing to
                # scrub — keep the destination's shadow unmaterialized.
                return
            dst._ensure_labels()[dst_offset : dst_offset + length] = piece

        return direct_get

    return wrapper


def make_disp_write0(runtime: DisTARuntime):
    def wrapper(original):
        def disp_write0(fd, mem, position, count, blocking=True, timeout=None) -> int:
            runtime.node.jni.calls.hit("FileDispatcherImpl#write0")
            data = runtime.outgoing(
                runtime.native_read(mem, position, count), "dispatcher.write0"
            )
            runtime.record_io(
                "send", "dispatcher.write0", data, channel=fd.send_channel
            )
            cells = wire.encode_cells(data, runtime.resolver)
            # The simulated kernel's buffers are sized so a full cell
            # write completes; see DESIGN.md (blocking simplification).
            fd.send_all(cells)
            return count

        return disp_write0

    return wrapper


def make_disp_read0(runtime: DisTARuntime):
    def wrapper(original):
        def disp_read0(fd, mem, position, count, blocking=True, timeout=None) -> int:
            runtime.node.jni.calls.hit("FileDispatcherImpl#read0")
            decoder = runtime.decoder_for(fd)
            budget = wire.wire_length(count)
            while True:
                if blocking:
                    kwargs = {} if timeout is None else {"timeout": timeout}
                    raw = fd.recv(budget, **kwargs)
                    if not raw:
                        decoder.check_clean_eof()
                        return EOF
                else:
                    raw = fd.recv_nonblocking(budget)
                    if raw is None:
                        # Nothing ready (possibly mid-cell); the selector
                        # will re-arm when more wire bytes arrive.
                        return UNAVAILABLE
                    if raw == b"":
                        decoder.check_clean_eof()
                        return EOF
                decoded = decoder.feed(raw, runtime.resolver)
                if decoded:
                    runtime.record_io(
                        "receive",
                        "dispatcher.read0",
                        decoded,
                        channel=fd.receive_channel,
                    )
                    runtime.native_write(mem, position, decoded)
                    return len(decoded)
                if not blocking and not decoder.residue_len:
                    return UNAVAILABLE

        return disp_read0

    return wrapper


def make_dgram_disp_write0(runtime: DisTARuntime):
    def wrapper(original):
        def dgram_disp_write0(fd, mem, position, count, destination) -> int:
            runtime.node.jni.calls.hit("DatagramDispatcherImpl#write0")
            data = runtime.outgoing(
                runtime.native_read(mem, position, count), "dgram_dispatcher.write0"
            )
            runtime.record_io(
                "send", "dgram_dispatcher.write0", data,
                channel=("udp", tuple(destination)),
            )
            _check_envelope_fits(count)
            fd.sendto(wire.encode_packet(data, runtime.resolver), destination)
            return count

        return dgram_disp_write0

    return wrapper


def make_dgram_disp_read0(runtime: DisTARuntime):
    def wrapper(original):
        def dgram_disp_read0(fd, mem, position, count, blocking=True, timeout=None) -> int:
            runtime.node.jni.calls.hit("DatagramDispatcherImpl#read0")
            from repro.errors import SimTimeout

            try:
                raw, _source = fd.recvfrom(
                    (timeout if timeout is not None else 30.0) if blocking else 0.001
                )
            except SimTimeout:
                if blocking:
                    raise
                return UNAVAILABLE
            decoded = _decode_incoming_datagram(runtime, TBytes(raw))[:count]
            runtime.record_io(
                "receive", "dgram_dispatcher.read0", decoded,
                channel=("udp", tuple(fd.address)),
            )
            runtime.native_write(mem, position, decoded)
            return len(decoded)

        return dgram_disp_read0

    return wrapper


def make_dgram_channel_send0(runtime: DisTARuntime):
    def wrapper(original):
        def dgram_channel_send0(fd, mem, position, count, destination) -> int:
            runtime.node.jni.calls.hit("DatagramChannelImpl#send0")
            data = runtime.outgoing(
                runtime.native_read(mem, position, count), "dgram_channel.send0"
            )
            runtime.record_io(
                "send", "dgram_channel.send0", data,
                channel=("udp", tuple(destination)),
            )
            _check_envelope_fits(count)
            fd.sendto(wire.encode_packet(data, runtime.resolver), destination)
            return count

        return dgram_channel_send0

    return wrapper


def make_dgram_channel_receive0(runtime: DisTARuntime):
    def wrapper(original):
        def dgram_channel_receive0(
            fd, mem, position, count, blocking=True, timeout=None
        ) -> tuple[int, Optional[tuple]]:
            runtime.node.jni.calls.hit("DatagramChannelImpl#receive0")
            from repro.errors import SimTimeout

            try:
                raw, source = fd.recvfrom(
                    (timeout if timeout is not None else 30.0) if blocking else 0.001
                )
            except SimTimeout:
                if blocking:
                    raise
                return UNAVAILABLE, None
            decoded = _decode_incoming_datagram(runtime, TBytes(raw))[:count]
            runtime.record_io(
                "receive", "dgram_channel.receive0", decoded,
                channel=("udp", tuple(fd.address)),
            )
            runtime.native_write(mem, position, decoded)
            return len(decoded), source

        return dgram_channel_receive0

    return wrapper
