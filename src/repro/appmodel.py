"""Calibrated application-compute model.

A real Phosphor-instrumented JVM pays shadow maintenance on *every*
arithmetic/move instruction of the application, which is where its 2–4×
overhead (paper Table V/VI) comes from — not from I/O alone.  The
simulated systems in this repository are deliberately thin, so this
per-byte checksum stands in for the application's compute over received
data:

* under ``Mode.ORIGINAL`` it runs the plain-value loop an uninstrumented
  JVM would execute;
* under shadow modes it runs the "rewritten" loop that consults and
  merges labels per byte.

Both the micro benchmark's ``check()`` phase and the real-system
workloads (consumers, followers, report readers) call
:func:`app_process` on data they receive.  See DESIGN.md (substitutions)
and EXPERIMENTS.md for how this calibration affects reported ratios.
"""

from __future__ import annotations

from itertools import chain, repeat

from repro.taint.policy import shadows_enabled
from repro.taint.values import TBytes, TInt, TStr, plain, union_labels


def app_process(value) -> object:
    """Checksum ``value``'s bytes, mode-aware (see module docstring)."""
    raw = plain(value)
    if isinstance(raw, str):
        raw = raw.encode("utf-8", "surrogatepass")
    if not isinstance(raw, (bytes, bytearray)):
        return 0
    if not shadows_enabled():
        acc = 0
        for b in raw:
            acc = (acc + b) & 0xFFFFF
        return acc
    labels = None
    if isinstance(value, TBytes):
        labels = value.labels
    elif isinstance(value, TStr):
        labels = value.labels
    if labels is None or not labels.has_labels():
        # Taint-state specialization (cf. The Taint Rabbit): when the
        # shadow is all-empty the "rewritten" loop dispatches to the
        # same plain-value loop the uninstrumented build runs, so the
        # per-byte label merge only costs where labels actually exist.
        acc = 0
        for b in raw:
            acc = (acc + b) & 0xFFFFF
        return TInt(acc)
    acc = 0
    taint = None
    last = None
    # zip pads with None past the labels' end (raw can be longer for
    # multi-byte TStr encodings) so every data byte still checksums.
    padded = chain(labels, repeat(None)) if labels is not None else repeat(None)
    for b, label in zip(raw, padded):
        acc = (acc + b) & 0xFFFFF
        if label is not None and label is not last:
            last = label
            taint = union_labels(taint, label)
    return TInt(acc, taint)
