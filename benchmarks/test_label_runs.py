"""Run-length shadow path vs the seed's per-byte list path.

The legacy reference below is the seed implementation of the hot path
(per-byte label lists: ``labels[i]``-scanning ``_gid_array``, the
``residue + wire`` / ``body[:, 1:].copy()`` decode, per-byte list
materialization) kept self-contained here so the comparison survives the
production code moving on.  The new production path stores shadows as
:class:`~repro.taint.values.LabelRuns` and encodes/decodes per run.

Results land in ``BENCH_PR1.json`` at the repository root, asserting the
run path wins on the canonical workload: a 64 KiB single-taint message.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import wire
from repro.taint import LocalId, TaintTree
from repro.taint.values import LabelRuns, TBytes

SIZE = 64 * 1024
REPEATS = 7
INNER = 3

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"


# --------------------------------------------------------------------- #
# Legacy (seed) list-path reference — do not "optimize"; it is the baseline
# --------------------------------------------------------------------- #


def _legacy_gid_array(length, labels, gid_for):
    gids = np.zeros(length, dtype=">u4")
    if labels is None:
        return gids
    i = 0
    while i < length:
        label = labels[i]
        j = i + 1
        while j < length and labels[j] is label:
            j += 1
        if label is not None:
            gids[i:j] = gid_for(label)
        i = j
    return gids


def _legacy_labels_list(gids, taint_for):
    if not gids.any():
        return None
    unique = np.unique(gids)
    mapping = {int(g): (None if g == 0 else taint_for(int(g))) for g in unique}
    if len(mapping) == 1:
        return [mapping[int(unique[0])]] * len(gids)
    return [mapping[g] for g in gids.tolist()]


def _legacy_encode_cells(data_bytes, labels, gid_for):
    length = len(data_bytes)
    out = np.empty((length, wire.CELL_WIDTH), dtype=np.uint8)
    out[:, 0] = np.frombuffer(data_bytes, dtype=np.uint8)
    out[:, 1:] = (
        _legacy_gid_array(length, labels, gid_for)
        .view(np.uint8)
        .reshape(length, wire.GID_WIDTH)
    )
    return out.tobytes()


def _legacy_decode_cells(stream, taint_for):
    residue = b""
    stream = residue + stream
    cells = len(stream) // wire.CELL_WIDTH
    body = np.frombuffer(stream[: cells * wire.CELL_WIDTH], dtype=np.uint8).reshape(
        cells, wire.CELL_WIDTH
    )
    data = body[:, 0].tobytes()
    gids = body[:, 1:].copy().view(">u4").reshape(cells)
    return data, _legacy_labels_list(gids, taint_for)


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


def _best_of(fn):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(INNER):
            fn()
        best = min(best, (time.perf_counter() - start) / INNER)
    return best


def test_run_path_beats_list_path_on_64k_single_taint():
    tree = TaintTree(LocalId("10.0.0.1", 1))
    taint = tree.taint_for_tag("payload")
    payload = b"x" * SIZE

    gid_for = lambda label: 1 if label is not None else 0
    taint_for = lambda gid: taint

    run_data = TBytes(payload, LabelRuns.filled(SIZE, taint))
    list_labels = [taint] * SIZE
    cells = wire.encode_cells(run_data, gid_for)
    assert cells == _legacy_encode_cells(payload, list_labels, gid_for)

    timings = {
        "encode": {
            "list_path_s": _best_of(
                lambda: _legacy_encode_cells(payload, list_labels, gid_for)
            ),
            "run_path_s": _best_of(lambda: wire.encode_cells(run_data, gid_for)),
        },
        "decode": {
            "list_path_s": _best_of(lambda: _legacy_decode_cells(cells, taint_for)),
            "run_path_s": _best_of(
                lambda: wire.CellDecoder().feed(cells, taint_for)
            ),
        },
        "slice_concat": {
            "list_path_s": _best_of(
                lambda: list_labels[: SIZE // 2] + list_labels[SIZE // 4 :]
            ),
            "run_path_s": _best_of(
                lambda: run_data.labels.slice(0, SIZE // 2).concat(
                    run_data.labels.slice(SIZE // 4, SIZE)
                )
            ),
        },
    }

    report = {
        "bench": "label_runs_vs_list",
        "message": f"{SIZE} bytes, single taint",
        "repeats": REPEATS,
        "results": {
            name: {
                **t,
                "speedup": t["list_path_s"] / t["run_path_s"],
            }
            for name, t in timings.items()
        },
    }
    _RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    for name, entry in report["results"].items():
        assert entry["speedup"] > 1.0, (
            f"{name}: run path ({entry['run_path_s']:.6f}s) not faster than "
            f"list path ({entry['list_path_s']:.6f}s)"
        )


def test_run_path_decode_labels_match_list_path():
    tree = TaintTree(LocalId("10.0.0.1", 1))
    ta = tree.taint_for_tag("a")
    tb = tree.taint_for_tag("b")
    runs = LabelRuns(512, [(0, 100, ta), (200, 300, tb), (300, 512, ta)])
    data = TBytes(bytes(512), runs)

    by_gid = {1: ta, 2: tb}
    by_label = {id(ta): 1, id(tb): 2}
    gid_for = lambda label: by_label.get(id(label), 0) if label is not None else 0

    cells = wire.encode_cells(data, gid_for)
    decoded = wire.CellDecoder().feed(cells, by_gid.__getitem__)
    _, legacy_labels = _legacy_decode_cells(cells, by_gid.__getitem__)
    assert decoded.labels.to_list() == legacy_labels
