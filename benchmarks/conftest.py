"""Shared configuration for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one table or figure of the paper's evaluation;
the ``table*_report`` "benchmarks" also print the rendered table (use
``-s`` to see them inline, or read the captured output).
"""

import pytest

#: Payload size for benchmark workloads.  Smaller than the test-suite
#: default so the full 3-mode × 30-case matrix stays fast; ratios are
#: size-stable above ~8 KiB.
BENCH_SIZE = 16 * 1024


@pytest.fixture(scope="session")
def bench_size() -> int:
    return BENCH_SIZE
