"""§V-E usability — launch-script LOC and zero source modifications."""

from repro.bench.tables import usability_table
from repro.core.launch import all_launch_scripts, average_changed_loc


def test_usability_report():
    report = usability_table()
    print("\n" + report)


def test_loc_budget_matches_paper():
    """Paper: ~10 LOC average, ZooKeeper needing only 3."""
    scripts = all_launch_scripts()
    assert scripts["ZooKeeper"].changed_loc == 3
    assert average_changed_loc() <= 10
    assert all(s.changed_loc <= 10 for s in scripts.values())


def test_no_source_code_changes_needed():
    """The five simulated systems contain no DisTA-specific hooks: the
    agent's only integration point is the per-JVM JNI table."""
    import inspect

    from repro.systems import activemq, hbase, mapreduce, rocketmq, zookeeper

    for module in (zookeeper, mapreduce, activemq, rocketmq, hbase):
        for name in dir(module):
            member = getattr(module, name)
            if inspect.ismodule(member):
                continue
            source = None
            try:
                source = inspect.getsource(member)
            except (TypeError, OSError):
                continue
            assert "DisTAAgent" not in source, f"{module.__name__}.{name} hooks DisTA"
            assert "TaintMapClient" not in source, f"{module.__name__}.{name} hooks DisTA"
