"""Elastic resharding benchmark (PR 8): live 1→4 scale-out vs a fresh
4-shard deployment.

The tentpole claim is that the Taint Map can grow online: a cluster
deployed with one shard scales to four **while serving traffic**, with
zero failed lookups and zero renumbered GIDs, and afterwards delivers
(nearly) the throughput of a fleet that was deployed with four shards
from day one.

Three measured phases, each best-of-``REPEATS`` fresh-registration
rounds (8 threads through one shared client, per-shard
``service_time`` modelling shards on their own machines):

* ``one_shard`` — the pre-scale baseline (1 shard, epoch 0);
* ``fresh_four`` — a 4-shard service deployed that way (epoch 0);
* ``live_four`` — a 1-shard service scaled to 4 **under churn** (a
  background thread registers throughout the migration), then measured.

Correctness canaries recorded alongside throughput (and asserted):

* every GID allocated before, during and after the scale-out resolves —
  ``failed_lookups == 0``;
* re-registering every pre-scale taint through a cache-free client
  returns the original GIDs — ``renumbered_gids == 0``.

Results land in ``BENCH_PR8.json``; acceptance is live-scaled
throughput ≥ 85% of fresh-4-shard.
"""

import json
import threading
import time
from pathlib import Path

from repro.core.elastic import RingCoordinator
from repro.core.taintmap import ShardedTaintMapService, TaintMapClient
from repro.runtime.cluster import TAINT_MAP_IP, TAINT_MAP_PORT
from repro.runtime.fs import SimFileSystem
from repro.runtime.kernel import SimKernel
from repro.runtime.modes import Mode
from repro.runtime.node import SimNode

SENDER_THREADS = 8
OPS_PER_THREAD = 40
#: Per-request shard processing cost (0.5 ms), matching BENCH_PR2.
SERVICE_TIME = 0.0005
REPEATS = 3
#: Taints registered before the scale-out (the state that must migrate).
PRELOAD = 200
#: Acceptance bar: live-scaled throughput over fresh-deployed.
MIN_LIVE_FRACTION = 0.85

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"


def _boot(shard_count, namespace):
    kernel = SimKernel(f"elastic-bench-{namespace}")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(
        kernel, TAINT_MAP_IP, TAINT_MAP_PORT, shard_count, service_time=SERVICE_TIME
    ).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    return kernel, fs, service, node


def _timed_round(client, node, namespace):
    """8 threads of fresh registrations; returns registrations/second."""
    taints = [
        [node.tree.taint_for_tag(f"{namespace}-{t}-{i}") for i in range(OPS_PER_THREAD)]
        for t in range(SENDER_THREADS)
    ]
    barrier = threading.Barrier(SENDER_THREADS + 1)

    def sender(batch):
        barrier.wait()
        for taint in batch:
            client.gid_for(taint)

    threads = [
        threading.Thread(target=sender, args=(batch,), daemon=True)
        for batch in taints
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return SENDER_THREADS * OPS_PER_THREAD / elapsed


def _steady_throughput(shard_count, namespace):
    """Best-of-REPEATS on a freshly deployed ``shard_count`` service."""
    kernel, fs, service, node = _boot(shard_count, namespace)
    client = TaintMapClient(node, service.addresses)
    try:
        return max(
            _timed_round(client, node, f"{namespace}-r{r}") for r in range(REPEATS)
        )
    finally:
        client.close()
        service.stop()


def _live_scale_out(namespace):
    """Deploy 1 shard, scale to 4 under churn, measure the scaled fleet.

    Returns (throughput, correctness dict, migration dict).
    """
    kernel, fs, service, node = _boot(1, namespace)
    client = TaintMapClient(node, service.addresses)
    try:
        pre_taints = [
            node.tree.taint_for_tag(f"{namespace}-pre-{i}") for i in range(PRELOAD)
        ]
        pre_gids = [client.gid_for(t) for t in pre_taints]

        # Churn keeps registering while the coordinator migrates.
        churned = []
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                taint = node.tree.taint_for_tag(f"{namespace}-churn-{i}")
                churned.append((taint, client.gid_for(taint)))
                i += 1

        churner = threading.Thread(target=churn, daemon=True)
        churner.start()
        migrate_started = time.perf_counter()
        coordinator = RingCoordinator(service)
        ring = coordinator.scale_to(4)
        migrate_elapsed = time.perf_counter() - migrate_started
        stop.set()
        churner.join(30)
        client.adopt_ring(ring)

        throughput = max(
            _timed_round(client, node, f"{namespace}-post-r{r}")
            for r in range(REPEATS)
        )

        # Canary 1: zero failed lookups across everything ever allocated.
        node2 = SimNode(
            "n2", kernel.register_node("10.0.0.2"), 2, kernel, fs, Mode.DISTA
        )
        checker = TaintMapClient(node2, service.addresses, cache_enabled=False)
        checker.adopt_ring(ring)
        all_gids = pre_gids + [gid for _, gid in churned]
        failed_lookups = sum(1 for gid in all_gids if checker.taint_for(gid) is None)

        # Canary 2: zero renumbered GIDs — migrated dedup state answers
        # with the original IDs.
        renumbered = sum(
            1
            for taint, gid in zip(pre_taints, pre_gids)
            if checker.gid_for(taint) != gid
        )
        checker.close()

        correctness = {
            "gids_checked": len(all_gids),
            "failed_lookups": failed_lookups,
            "renumbered_gids": renumbered,
            "churn_registrations_during_migration": len(churned),
        }
        migration = {
            "ring_epoch": ring.epoch,
            "entries_migrated": coordinator.handoff_entries_sent,
            "handoff_chunks": coordinator.handoff_chunks_sent,
            "migration_seconds": migrate_elapsed,
            "stale_ring_retries": client.stats.snapshot()["stale_ring_retries"],
        }
        return throughput, correctness, migration
    finally:
        client.close()
        service.stop()


def test_live_scale_out_matches_fresh_deployment():
    one_shard = _steady_throughput(1, "one")
    fresh_four = _steady_throughput(4, "fresh4")
    live_four, correctness, migration = _live_scale_out("live")

    report = {
        "bench": "elastic_resharding",
        "workload": (
            f"{SENDER_THREADS} threads x {OPS_PER_THREAD} fresh registrations, "
            f"service_time={SERVICE_TIME}s/shard, {PRELOAD} preloaded taints, "
            f"churn during migration"
        ),
        "repeats": REPEATS,
        "results": {
            "one_shard_registrations_per_s": one_shard,
            "fresh_four_registrations_per_s": fresh_four,
            "live_four_registrations_per_s": live_four,
            "live_over_fresh": live_four / fresh_four,
            "live_over_one_shard": live_four / one_shard,
        },
        "correctness": correctness,
        "migration": migration,
    }
    _RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert correctness["failed_lookups"] == 0, correctness
    assert correctness["renumbered_gids"] == 0, correctness
    assert migration["entries_migrated"] > 0
    fraction = live_four / fresh_four
    assert fraction >= MIN_LIVE_FRACTION, (
        f"live-scaled fleet at {fraction:.2%} of fresh 4-shard throughput "
        f"({live_four:.0f} vs {fresh_four:.0f} registrations/s)"
    )
