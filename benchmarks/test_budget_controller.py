"""Budgeted-tracking benchmark: the coverage-per-budget curve (ISSUE 7).

Runs the :class:`~repro.obs.profiler.BudgetSweep` over the SIM systems
at overhead budgets 1.02 / 1.05 / 1.10 / unlimited and writes the curve
to ``BENCH_PR7.json`` at the repository root.

As with the earlier profiles the acceptance gate is the telemetry
contract, not a wall-clock bound (CI timing is noisy):

* **convergence canary** — every budgeted leg must end with its worst
  per-node steady-state controller estimate at or below the ceiling
  (within the measurement slack) while still tracking a *nonzero* flow
  set: a controller that converges by tracking nothing has not
  converged, it has capitulated;
* **the unlimited leg is a no-op** — no controller telemetry at all
  (no ratio gauges, zero sheds), and full coverage by construction;
* **coverage is non-decreasing in budget** — a looser ceiling never
  buys *less* tracking.  Ties are expected: a reactive controller
  cannot retroactively untaint flows admitted before its first tick,
  so systems whose sources all fire at startup show equal tainted
  volume at every budget.
"""

from pathlib import Path

from repro.obs.profiler import (
    BUDGET_CANARY_SLACK,
    DEFAULT_SWEEP_BUDGETS,
    DEFAULT_SYSTEMS,
    BudgetSweep,
)

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

#: Run-to-run tolerance on the byte-coverage monotonicity check: flow
#: admission is deterministic, but retry traffic under heavy shedding
#: can wiggle tainted-byte totals by a few percent.
COVERAGE_TOLERANCE = 0.05


def test_budget_controller_sweep_sim_systems():
    sweep = BudgetSweep(systems=DEFAULT_SYSTEMS, repeats=1)
    points = sweep.run()
    sweep.write(_RESULTS_PATH)
    print()
    print(sweep.render())

    assert len(points) == len(DEFAULT_SYSTEMS) * len(sweep.budgets)
    assert sweep.broken_points() == []

    by_system: dict = {}
    for point in points:
        by_system.setdefault(point.system, {})[point.budget] = point

    ceilings = sorted(b for b in DEFAULT_SWEEP_BUDGETS if b is not None)
    for system, curve in by_system.items():
        unlimited = curve[None]
        # Unlimited: differentially identical to pre-budget behaviour —
        # the controller is never built, so no budget telemetry exists.
        assert unlimited.sheds == 0, f"{system}@unlimited: controller shed"
        assert unlimited.controller_ratio == 0.0
        assert unlimited.smoothed_ratio == 0.0
        assert unlimited.coverage == 1.0
        assert unlimited.coverage_sampling == 1.0
        assert unlimited.coverage_methods == 1.0
        assert unlimited.crossings > 0, f"{system}@unlimited: no crossings"
        assert unlimited.tainted_bytes > 0, f"{system}@unlimited: no taint"

        for budget in ceilings:
            point = curve[budget]
            # The convergence canary, spelled out (broken_points()
            # already enforces it; assert here so a regression names
            # the system and ceiling).
            assert point.tainted_bytes > 0, f"{system}@{budget}: tracked nothing"
            assert point.crossings > 0, f"{system}@{budget}: no crossings"
            assert point.controller_ratio <= budget + BUDGET_CANARY_SLACK, (
                f"{system}@{budget}: steady overhead {point.controller_ratio:.3f} "
                f"breaches ceiling {budget} (+{BUDGET_CANARY_SLACK} slack)"
            )
            # Coverage can only be spent down from the unlimited leg.
            assert point.coverage <= 1.0 + COVERAGE_TOLERANCE

        # Monotonicity: a looser budget never buys less coverage.
        ordered = [curve[budget] for budget in ceilings] + [unlimited]
        for tighter, looser in zip(ordered, ordered[1:]):
            assert looser.coverage >= tighter.coverage - COVERAGE_TOLERANCE, (
                f"{system}: coverage fell from {tighter.coverage:.3f} "
                f"(budget {tighter.budget}) to {looser.coverage:.3f} "
                f"(budget {looser.budget})"
            )

    # At least one system must actually exercise the actuators — a
    # sweep where no controller ever sheds is not testing control.
    assert any(
        curve[budget].sheds > 0 for curve in by_system.values() for budget in ceilings
    ), "no budgeted leg ever shed coverage"
