"""Ablation: Phosphor's shared taint tree vs naive per-value tag sets.

Paper §II-B: "By utilizing the above taint storage strategy, Phosphor
can save much memory usage. If two variables have the same taint tag,
their taints can refer to the same node in the tree."

This benchmark quantifies the claim on our implementation: N values
tainted from a small tag population cost O(distinct tag sets) tree
nodes, versus O(N) frozensets in the naive design.
"""

import sys

from repro.taint import LocalId, TaintTree


def _tree_storage_objects(tree: TaintTree) -> int:
    """Distinct storage objects in the shared-tree design."""
    return tree.node_count()


def _naive_storage_bytes(tag_sets: list) -> int:
    return sum(sys.getsizeof(frozenset(s)) for s in tag_sets)


def _make_workload(tree: TaintTree, values: int, tags: int) -> list:
    """``values`` shadow labels drawn from combinations of ``tags``."""
    base = [tree.taint_for_tag(f"t{i}") for i in range(tags)]
    labels = []
    for i in range(values):
        taint = base[i % tags]
        if i % 3 == 0:
            taint = taint.union(base[(i + 1) % tags])
        labels.append(taint)
    return labels


def test_tree_shares_equal_tag_sets():
    tree = TaintTree(LocalId("10.0.0.1", 1))
    labels = _make_workload(tree, values=10_000, tags=8)
    distinct_handles = {id(label) for label in labels}
    # 10k tainted values collapse to at most tags + pairwise combos.
    assert len(distinct_handles) <= 8 + 8
    assert _tree_storage_objects(tree) <= 1 + 8 + 16


def test_memory_savings_vs_naive():
    tree = TaintTree(LocalId("10.0.0.1", 1))
    labels = _make_workload(tree, values=10_000, tags=8)
    naive_bytes = _naive_storage_bytes([l.tags for l in labels])
    # Shared design: one node object (~200B generously) per distinct set,
    # plus one pointer per value.
    shared_bytes = _tree_storage_objects(tree) * 200 + len(labels) * 8
    assert shared_bytes < naive_bytes / 5, (
        f"expected >5x saving, got naive={naive_bytes} shared={shared_bytes}"
    )


def test_benchmark_tainting_with_shared_tree(benchmark):
    tree = TaintTree(LocalId("10.0.0.1", 1))
    base = [tree.taint_for_tag(f"b{i}") for i in range(8)]

    def taint_values():
        out = None
        for i in range(2000):
            out = base[i % 8].union(base[(i + 3) % 8])
        return out

    benchmark(taint_values)


def test_benchmark_tainting_naive_sets(benchmark):
    tree = TaintTree(LocalId("10.0.0.1", 1))
    base = [frozenset(tree.taint_for_tag(f"n{i}").tags) for i in range(8)]

    def taint_values():
        out = None
        for i in range(2000):
            out = base[i % 8] | base[(i + 3) % 8]
        return out

    benchmark(taint_values)
