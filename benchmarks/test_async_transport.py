"""Async multiplexed transport vs pooled client on a many-small-message
SIM workload (ISSUE 3 tentpole).

The workload: many sender threads, each resolving one fresh taint per
"message" — the pattern of a SIM cluster exchanging lots of small
messages, where every send pays a Taint Map round-trip.  The pooled
client spends one connection round-trip per registration; the async
client multiplexes one connection per shard and coalesces concurrent
registrations into per-window batches, so k in-flight messages cost one
round-trip per window.

``service_time`` models each registration round-trip's server-side cost
(0.5 ms, LAN scale).  The acceptance gate is round-trips (robust under
CI scheduling noise, counted via ``TaintMapStats``); throughput is
reported alongside.

Results land in ``BENCH_PR3.json`` at the repository root, asserting the
async+coalescing transport needs at most half the round-trips of the
PR 2 pooled client on the same workload.
"""

import json
import threading
import time
from pathlib import Path

from repro.core.aio_transport import AsyncTaintMapClient
from repro.core.taintmap import ShardedTaintMapService, TaintMapClient
from repro.runtime.cluster import TAINT_MAP_IP, TAINT_MAP_PORT
from repro.runtime.fs import SimFileSystem
from repro.runtime.kernel import SimKernel
from repro.runtime.modes import Mode
from repro.runtime.node import SimNode

SENDER_THREADS = 16
MESSAGES_PER_THREAD = 25
#: Per-request shard processing cost (0.5 ms — a LAN round-trip-scale
#: service time, far above sleep-granularity noise).
SERVICE_TIME = 0.0005
#: Coalescing window: ~2 service times, so concurrent senders pile into
#: the window opened while the previous flush is being served.
WINDOW_US = 1000.0
REPEATS = 3

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"


def _measure_round(transport: str, namespace: str) -> tuple[float, int]:
    """One timed round; returns (messages/s, client round-trips)."""
    kernel = SimKernel(f"aio-bench-{namespace}")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(
        kernel, TAINT_MAP_IP, TAINT_MAP_PORT, 1, service_time=SERVICE_TIME
    ).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    if transport == "async":
        client = AsyncTaintMapClient(
            node, service.addresses, coalesce_window_us=WINDOW_US
        )
    else:
        client = TaintMapClient(node, service.addresses)
    try:
        taints = [
            [
                node.tree.taint_for_tag(f"{namespace}-{t}-{i}")
                for i in range(MESSAGES_PER_THREAD)
            ]
            for t in range(SENDER_THREADS)
        ]
        barrier = threading.Barrier(SENDER_THREADS + 1)

        def sender(batch):
            barrier.wait()
            for taint in batch:
                client.gid_for(taint)

        threads = [
            threading.Thread(target=sender, args=(batch,), daemon=True)
            for batch in taints
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        total = SENDER_THREADS * MESSAGES_PER_THREAD
        assert service.global_taint_count() == total
        return total / elapsed, client.requests_sent
    finally:
        client.close()
        service.stop()


def test_async_coalescing_halves_roundtrips():
    best = {}
    for transport in ("pooled", "async"):
        best_throughput, fewest_roundtrips = 0.0, None
        for repeat in range(REPEATS):
            throughput, roundtrips = _measure_round(
                transport, f"{transport}-r{repeat}"
            )
            best_throughput = max(best_throughput, throughput)
            fewest_roundtrips = (
                roundtrips
                if fewest_roundtrips is None
                else min(fewest_roundtrips, roundtrips)
            )
        best[transport] = (best_throughput, fewest_roundtrips)

    total = SENDER_THREADS * MESSAGES_PER_THREAD
    report = {
        "bench": "async_transport",
        "workload": (
            f"{SENDER_THREADS} threads x {MESSAGES_PER_THREAD} small messages "
            f"(1 fresh registration each), 1 shard, "
            f"service_time={SERVICE_TIME}s, coalesce_window={WINDOW_US}us"
        ),
        "repeats": REPEATS,
        "results": {
            transport: {
                "messages_per_s": throughput,
                "taint_map_roundtrips": roundtrips,
                "messages_per_roundtrip": total / roundtrips,
            }
            for transport, (throughput, roundtrips) in best.items()
        },
        "roundtrip_reduction": best["pooled"][1] / best["async"][1],
        "throughput_speedup": best["async"][0] / best["pooled"][0],
    }
    _RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    reduction = report["roundtrip_reduction"]
    assert reduction >= 2.0, (
        f"async+coalescing only cut round-trips {reduction:.2f}x "
        f"({best['pooled'][1]} pooled vs {best['async'][1]} async)"
    )
