"""Sharded Taint Map throughput: fresh registrations vs shard count.

The paper concedes (§V-F, §VI) that the single-point Taint Map bounds
cluster throughput.  This benchmark measures the fix: N shards, each a
serial single-point service, with one shared client fanning requests
out over per-shard connection pools from 8 sender threads.

Each shard models a production deployment on its own node via
``service_time`` — per-request processing cost paid serially *per
shard* (shards overlap with each other, exactly like N independent
machines).  Without it, every shard would contend for this process's
interpreter and the measurement would show scheduler noise, not
queueing behaviour.

Results land in ``BENCH_PR2.json`` at the repository root, asserting
fresh-registration throughput at 4 shards is at least 2x the 1-shard
baseline (the PR's acceptance bar).
"""

import json
import threading
import time
from pathlib import Path

from repro.core.taintmap import ShardedTaintMapService, TaintMapClient
from repro.runtime.cluster import TAINT_MAP_IP, TAINT_MAP_PORT
from repro.runtime.fs import SimFileSystem
from repro.runtime.kernel import SimKernel
from repro.runtime.modes import Mode
from repro.runtime.node import SimNode

SHARD_COUNTS = [1, 2, 4]
SENDER_THREADS = 8
OPS_PER_THREAD = 40
#: Per-request shard processing cost (0.5 ms — a LAN round-trip-scale
#: service time, far above sleep-granularity noise).
SERVICE_TIME = 0.0005
REPEATS = 3

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"


def _measure_round(shard_count: int, namespace: str) -> float:
    """One timed round: 8 threads push fresh registrations through one
    shared client; returns registrations per second."""
    kernel = SimKernel(f"shard-bench-{namespace}")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(
        kernel, TAINT_MAP_IP, TAINT_MAP_PORT, shard_count, service_time=SERVICE_TIME
    ).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    client = TaintMapClient(node, service.addresses)
    try:
        taints = [
            [
                node.tree.taint_for_tag(f"{namespace}-{t}-{i}")
                for i in range(OPS_PER_THREAD)
            ]
            for t in range(SENDER_THREADS)
        ]
        barrier = threading.Barrier(SENDER_THREADS + 1)

        def sender(batch):
            barrier.wait()
            for taint in batch:
                client.gid_for(taint)

        threads = [
            threading.Thread(target=sender, args=(batch,), daemon=True)
            for batch in taints
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        total = SENDER_THREADS * OPS_PER_THREAD
        assert service.global_taint_count() == total
        assert client.requests_sent == total
        return total / elapsed
    finally:
        client.close()
        service.stop()


def test_four_shards_double_fresh_registration_throughput():
    throughput = {}
    for shard_count in SHARD_COUNTS:
        best = 0.0
        for repeat in range(REPEATS):
            best = max(
                best, _measure_round(shard_count, f"s{shard_count}r{repeat}")
            )
        throughput[shard_count] = best

    report = {
        "bench": "taintmap_sharding",
        "workload": (
            f"{SENDER_THREADS} threads x {OPS_PER_THREAD} fresh registrations, "
            f"shared client, service_time={SERVICE_TIME}s/shard"
        ),
        "repeats": REPEATS,
        "results": {
            str(count): {
                "registrations_per_s": throughput[count],
                "speedup_vs_1_shard": throughput[count] / throughput[1],
            }
            for count in SHARD_COUNTS
        },
    }
    _RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    speedup_at_4 = throughput[4] / throughput[1]
    assert speedup_at_4 >= 2.0, (
        f"4 shards only {speedup_at_4:.2f}x over 1 shard "
        f"({throughput[4]:.0f} vs {throughput[1]:.0f} registrations/s)"
    )
