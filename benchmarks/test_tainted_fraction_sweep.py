"""Tainted-fraction overhead sweep: the zero-taint fast-path curve (ISSUE 6).

Runs the :class:`~repro.obs.profiler.TaintedFractionSweep` over the SIM
systems at 0% → 100% tainted traffic and writes the curve to
``BENCH_PR6.json`` at the repository root.

As with the PR 4 profile, the acceptance gate is the telemetry contract,
not a timing bound (CI timing is noisy):

* the **0%-tainted leg** must take the zero-taint fast path — nonzero
  ``dista_fastpath_total{path="fast"}``, zero slow-path hits, zero Taint
  Map RPCs and zero tainted crossings — so a specialization regression
  cannot masquerade as noise;
* the **100%-tainted leg** must still observe crossings and Taint Map
  RPCs (the fast path must not swallow real taint);
* per system, the 0% leg must be cheaper than the 100% leg (ordering,
  the robust slice of "monotone degradation").
"""

from pathlib import Path

from repro.obs.profiler import DEFAULT_SYSTEMS, TaintedFractionSweep

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def test_tainted_fraction_sweep_sim_systems():
    sweep = TaintedFractionSweep(systems=DEFAULT_SYSTEMS, repeats=2)
    points = sweep.run()
    sweep.write(_RESULTS_PATH)
    print()
    print(sweep.render())

    assert len(points) == len(DEFAULT_SYSTEMS) * len(sweep.fractions)
    assert sweep.broken_points() == []

    by_system: dict = {}
    for point in points:
        by_system.setdefault(point.system, {})[point.tainted_fraction] = point

    for system, curve in by_system.items():
        zero, full = curve[0.0], curve[1.0]
        # 0%: pure fast path, no Taint Map involvement at all.
        assert zero.fastpath_fast > 0, f"{system}@0%: no fast-path hits"
        assert zero.fastpath_slow == 0, f"{system}@0%: slow path taken"
        assert zero.taintmap_rpcs == 0, f"{system}@0%: Taint Map RPCs issued"
        assert zero.crossings == 0, f"{system}@0%: tainted crossings"
        assert zero.tainted_bytes == 0, f"{system}@0%: tainted bytes"
        # Wire amplification is unchanged: frames are byte-identical
        # between paths, so the 5x cell overhead still applies at 0%.
        assert zero.wire_bytes > 0
        # 100%: the specialization must not swallow real taint.
        assert full.crossings > 0, f"{system}@100%: zero crossings"
        assert full.taintmap_rpcs > 0, f"{system}@100%: zero Taint Map RPCs"
        assert full.tainted_bytes > 0, f"{system}@100%: zero tainted bytes"
        assert full.fastpath_slow > 0, f"{system}@100%: slow path never taken"
        # Intermediate fractions sit strictly between the endpoints in
        # tainted volume (the knob actually turns).
        for fraction in (0.25, 0.5, 0.75):
            mid = curve[fraction]
            assert 0 < mid.tainted_bytes < full.tainted_bytes, (
                f"{system}@{fraction}: tainted_bytes {mid.tainted_bytes} not "
                f"between 0 and {full.tainted_bytes}"
            )
        # Endpoint ordering on time: untainted traffic must be cheaper
        # than fully tainted traffic.
        assert zero.dista_seconds < full.dista_seconds, (
            f"{system}: 0% leg ({zero.dista_seconds:.4f}s) not cheaper than "
            f"100% leg ({full.dista_seconds:.4f}s)"
        )
