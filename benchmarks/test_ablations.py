"""Ablations of DisTA's design choices (DESIGN.md §4).

1. **Global-ID caching off** — every tainted byte run re-registers with
   the Taint Map; quantifies why Fig. 9's step-② dedup matters.
2. **Message-level granularity** — one taint for a whole buffer instead
   of per-byte labels; quantifies the over-tainting byte-level tracking
   avoids (§II-D precision).
3. **Inline serialized taints (Taint-Exchange style, no Taint Map)** —
   quantifies the bandwidth argument of §III-D: a serialized taint is
   hundreds of bytes, a Global ID is four.
"""

import pytest

from repro.core import wire
from repro.core.taintmap import serialize_tags
from repro.jre import ServerSocket, Socket
from repro.microbench.cases import CASES_BY_NAME
from repro.microbench.workload import run_case
from repro.runtime.cluster import Cluster
from repro.runtime.modes import Mode
from repro.taint.values import TBytes


class TestGidCacheAblation:
    def _run(self, agent_options, payload=4096, writes=16):
        """One tainted flow sent as ``writes`` separate messages —
        each write is (at least) one Global-ID resolution."""
        cluster = Cluster(Mode.DISTA, agent_options=agent_options)
        n1 = cluster.add_node("n1")
        n2 = cluster.add_node("n2")
        with cluster:
            server = ServerSocket(n2, 9000)
            client = Socket.connect(n1, ("10.0.0.2", 9000))
            conn = server.accept()
            taint = n1.tree.taint_for_tag("t")
            chunk = payload // writes
            for _ in range(writes):
                client.get_output_stream().write(TBytes.tainted(b"x" * chunk, taint))
            conn.get_input_stream().read_fully(chunk * writes)
            return cluster.taint_map_server.stats.snapshot()

    def test_cache_prevents_repeated_registration(self):
        cached = self._run({})
        uncached = self._run({"cache_enabled": False})
        # Fig. 9 step ②: the cached client registers the taint once, no
        # matter how many messages carry it.
        assert cached["register_requests"] == 1
        # Without the cache, every message re-registers it.
        assert uncached["register_requests"] >= 16

    @pytest.mark.parametrize("cache_enabled", [True, False], ids=["cached", "uncached"])
    def test_benchmark_cache(self, benchmark, cache_enabled):
        benchmark.pedantic(
            lambda: self._run({} if cache_enabled else {"cache_enabled": False}),
            rounds=3,
            iterations=1,
        )


class TestGranularityAblation:
    def _precision_probe(self, agent_options):
        """Send a half-tainted buffer; report whether the untainted half
        stayed untainted on arrival."""
        cluster = Cluster(Mode.DISTA, agent_options=agent_options)
        n1 = cluster.add_node("n1")
        n2 = cluster.add_node("n2")
        with cluster:
            server = ServerSocket(n2, 9000)
            client = Socket.connect(n1, ("10.0.0.2", 9000))
            conn = server.accept()
            taint = n1.tree.taint_for_tag("half")
            message = TBytes.tainted(b"T" * 512, taint) + TBytes(b"." * 512)
            client.get_output_stream().write(message)
            received = conn.get_input_stream().read_fully(1024)
            clean_half = received[512:]
            return clean_half.overall_taint() is None

    def test_byte_granularity_is_precise(self):
        assert self._precision_probe({}) is True

    def test_message_granularity_over_taints(self):
        """The ablated design taints the clean half too — the imprecision
        the paper attributes to coarse-grained tools (§II-D)."""
        assert self._precision_probe({"byte_granularity": False}) is False

    def test_message_granularity_still_sound(self):
        result = run_case(
            CASES_BY_NAME["socket_bytes_bulk"], Mode.DISTA, size=2048
        )
        assert result.sound


class TestInlineTaintAblation:
    def test_inline_serialized_taints_blow_up_bandwidth(self):
        """Taint-Exchange-style inline taints vs DisTA's 4-byte GIDs.

        The paper (§III-D): "A serialized taint with one tag can be over
        200 bytes … far more than 200X bandwidth overhead" — while the
        Global-ID design pins the wire cost at 5×."""
        from repro.taint import LocalId, TaintTree

        tree = TaintTree(LocalId("10.0.0.1", 4242))
        taint = tree.taint_for_tag("a-reasonably-descriptive-tag-name")
        serialized = serialize_tags(taint.tags)
        payload = 1024
        gid_wire = wire.wire_length(payload)
        inline_wire = payload * (1 + len(serialized))
        assert gid_wire == payload * 5
        assert inline_wire / payload > 30  # per-byte inline taint cost
        assert inline_wire > gid_wire * 6

    def test_multi_tag_taint_grows_inline_cost_linearly(self):
        from repro.taint import LocalId, TaintTree

        tree = TaintTree(LocalId("10.0.0.1", 4242))
        combined = tree.empty
        sizes = []
        for i in range(8):
            combined = combined.union(tree.taint_for_tag(f"tag-number-{i}"))
            sizes.append(len(serialize_tags(combined.tags)))
        growth = [b - a for a, b in zip(sizes, sizes[1:])]
        assert all(g > 0 for g in growth)
        # The Global ID stays 4 bytes no matter how many tags combine.
        assert wire.GID_WIDTH == 4
