"""Ablation: partial API coverage — the §II-D soundness argument.

    "By default, FlowDist only modifies 6 JRE APIs for network
    communication … However, there are over 100 APIs for network
    communication in JRE.  FlowDist can drop the data flow information
    within these unmonitored APIs.  Thus, it is unsound."

We model a FlowDist-like tool by instrumenting only the **stream**
wrapper type (Type 1 — the socket/object-stream APIs FlowDist covers)
and run the full 30-case matrix: the socket-family cases stay sound,
while every UDP/NIO/AIO/Netty case silently loses its taints — exactly
the coverage hole DisTA's JNI-level completeness closes.
"""

import pytest

from repro.microbench.cases import CASES
from repro.microbench.workload import run_case
from repro.runtime.cluster import Cluster
from repro.runtime.modes import Mode

#: Protocol groups FlowDist's 6 stream-level APIs would cover in our
#: simulated JRE (everything that bottoms out in socketRead0/Write0).
STREAM_COVERED = {"JRE Socket", "JRE HTTP"}


def _run_partial(case, size=2048):
    # wrapper_types={1}: Type-1 (stream) instrumentation only.
    from repro.microbench.workload import CaseContext
    import repro.microbench.workload as workload_module

    original_cluster_ctor = workload_module.Cluster
    try:
        workload_module.Cluster = lambda mode, name: original_cluster_ctor(
            mode, name, agent_options={"wrapper_types": frozenset({1})}
        )
        return run_case(case, Mode.DISTA, size=size)
    finally:
        workload_module.Cluster = original_cluster_ctor


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_partial_coverage_matrix(case):
    result = _run_partial(case)
    assert result.data_ok, f"{case.name}: data corrupted under partial coverage"
    if case.protocol in STREAM_COVERED:
        assert result.sound, f"{case.name}: should be covered by stream APIs"
    else:
        assert not result.sound, (
            f"{case.name}: unexpectedly sound — the partial tool should "
            "have dropped this protocol's taints"
        )


def test_coverage_summary():
    """Counted the way the paper argues it: a stream-API-only tool covers
    23/30 cases; DisTA's 23 JNI methods cover 30/30."""
    covered = sum(1 for c in CASES if c.protocol in STREAM_COVERED)
    assert covered == 23
    assert len(CASES) - covered == 7  # UDP, NIO, AIO, Netty cases


@pytest.mark.parametrize("protocol", sorted({c.protocol for c in CASES}))
def test_benchmark_partial_by_protocol(benchmark, protocol):
    case = next(c for c in CASES if c.protocol == protocol)
    benchmark.pedantic(lambda: _run_partial(case), rounds=2, iterations=1)
