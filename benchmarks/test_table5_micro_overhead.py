"""Table V — micro-benchmark runtime overhead (Original/Phosphor/DisTA).

Benchmarks the bulk-socket case under each mode (the headline ratio) and
regenerates the full table with paper-comparison columns.
"""

import pytest

from repro.bench.overhead import run_table5
from repro.bench.tables import table5
from repro.microbench.cases import CASES_BY_NAME
from repro.microbench.workload import run_case
from repro.runtime.modes import Mode


@pytest.mark.parametrize("mode", [Mode.ORIGINAL, Mode.PHOSPHOR, Mode.DISTA])
def test_benchmark_socket_bulk(benchmark, mode, bench_size):
    case = CASES_BY_NAME["socket_bytes_bulk"]
    benchmark(lambda: run_case(case, mode, size=bench_size))


@pytest.mark.parametrize("mode", [Mode.ORIGINAL, Mode.PHOSPHOR, Mode.DISTA])
def test_benchmark_netty_socket(benchmark, mode, bench_size):
    case = CASES_BY_NAME["netty_socket"]
    benchmark(lambda: run_case(case, mode, size=bench_size))


def test_table5_report(bench_size):
    report = table5(size=bench_size, repeats=2)
    print("\n" + report)
    assert "Average" in report


def test_overhead_ordering_holds(bench_size):
    """The paper's qualitative claim: Original < Phosphor < DisTA on
    average, with DisTA's inter-node addition being the smaller step."""
    rows = run_table5(size=bench_size, repeats=2)
    average = next(r for r in rows if r.name == "Average")
    assert average.phosphor_overhead > 1.0
    assert average.dista_overhead > average.phosphor_overhead
