"""Bounded GID-cache ablation: capacity vs re-registration traffic.

PR 2 added an optional LRU bound to the client's GID/taint caches
(``cache_capacity``); the ROADMAP asks what that bound costs.  A SIM
workload re-sends its working set of labels over and over — every cache
miss re-registers an already-known taint with the Taint Map (the Fig. 9
step-② dedup the cache exists to avoid), so the metric that matters is
**register entries reaching the server** as capacity shrinks below the
working set.

Sweep: cache disabled / 1k / 64k / unbounded, working set of 4096
labels, 3 passes.  An unbounded (or working-set-sized) cache pays the
registration traffic once; a 1k cache thrashes; no cache pays it every
pass.  Results land in ``BENCH_PR3_CACHE.json`` at the repository root.

PR 7 made the bounded policy **segmented** (SLRU): new entries sit on
probation and only a re-reference promotes them into the protected
segment.  The second measurement here is the scan-resistance point that
policy buys: a warmed hot set must survive a one-pass cold scan of
twice the cache capacity (plain LRU would evict it wholesale).

PR 8 added **TinyLFU admission** (``cache_admission=True``): a 4-bit
count-min sketch gates probation inserts, so one-hit wonders stop
displacing proven-hot entries.  The third measurement is the skewed
point that gate targets — a Zipfian hot head behind a long tail of
once-used keys (the adversarial shape for recency caches: most
references hit the head, but most *distinct* keys are tail).  Plain
SLRU inserts every tail key into probation and immediately evicts
another entry to make room — insert/evict churn on the lock-held fast
path of every send.  The sketch rejects tail keys at the door (their
frequency never beats the resident victim's), collapsing eviction
churn several-fold while holding registration traffic at parity on the
identical trace.
"""

import json
import random
from pathlib import Path

from repro.core.taintmap import ShardedTaintMapService, TaintMapClient
from repro.runtime.cluster import TAINT_MAP_IP, TAINT_MAP_PORT
from repro.runtime.fs import SimFileSystem
from repro.runtime.kernel import SimKernel
from repro.runtime.modes import Mode
from repro.runtime.node import SimNode

#: Distinct labels the workload keeps re-sending.
WORKING_SET = 4096
PASSES = 3
#: Labels per message (one batched gids_for call).
BATCH = 64

#: capacity sweep: None key = unbounded, 0 = cache disabled.
CAPACITIES = {"disabled": 0, "1k": 1024, "64k": 65536, "unbounded": None}

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3_CACHE.json"


def _measure(label: str, capacity) -> dict:
    kernel = SimKernel(f"cache-bench-{label}")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(
        kernel, TAINT_MAP_IP, TAINT_MAP_PORT, 1
    ).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    if capacity == 0:
        client = TaintMapClient(node, service.addresses, cache_enabled=False)
    else:
        client = TaintMapClient(node, service.addresses, cache_capacity=capacity)
    try:
        taints = [node.tree.taint_for_tag(f"{label}-{i}") for i in range(WORKING_SET)]
        for _ in range(PASSES):
            for start in range(0, WORKING_SET, BATCH):
                client.gids_for(taints[start : start + BATCH])
        server = service.servers[0]
        snapshot = client.stats.snapshot()
        return {
            "register_entries": server.stats.register_entries,
            "reregistration_entries": server.stats.register_entries - WORKING_SET,
            "roundtrips": client.requests_sent,
            "cache_hits": snapshot["cache_hits"],
            "cache_misses": snapshot["cache_misses"],
            "cache_evictions": snapshot["cache_evictions"],
        }
    finally:
        client.close()
        service.stop()


#: Scan-resistance point: hot set (fits protected segment), cold scan.
SCAN_CAPACITY = 1024
SCAN_HOT = 512
SCAN_COLD = 2 * SCAN_CAPACITY


def _measure_scan_resistance() -> dict:
    """Warm a hot set into the protected segment, blast a cold one-pass
    scan past it, then re-touch the hot set and count re-registrations."""
    kernel = SimKernel("cache-bench-scan")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(kernel, TAINT_MAP_IP, TAINT_MAP_PORT, 1).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    client = TaintMapClient(node, service.addresses, cache_capacity=SCAN_CAPACITY)
    try:
        hot = [node.tree.taint_for_tag(f"hot-{i}") for i in range(SCAN_HOT)]
        cold = [node.tree.taint_for_tag(f"cold-{i}") for i in range(SCAN_COLD)]
        # Two warm passes: the second one's hits promote the hot set
        # out of probation into the protected segment.
        for _ in range(2):
            for start in range(0, SCAN_HOT, BATCH):
                client.gids_for(hot[start : start + BATCH])
        # One-pass cold scan of 2x capacity: on plain LRU this evicts
        # everything; on SLRU it only churns the probation segment.
        for start in range(0, SCAN_COLD, BATCH):
            client.gids_for(cold[start : start + BATCH])
        server = service.servers[0]
        registered_before_retouch = server.stats.register_entries
        for start in range(0, SCAN_HOT, BATCH):
            client.gids_for(hot[start : start + BATCH])
        survived = SCAN_HOT - (
            server.stats.register_entries - registered_before_retouch
        )
        return {
            "capacity": SCAN_CAPACITY,
            "hot_set": SCAN_HOT,
            "cold_scan": SCAN_COLD,
            "hot_survived_scan": survived,
            "hot_survival_rate": survived / SCAN_HOT,
            "cache_evictions": client.stats.snapshot()["cache_evictions"],
        }
    finally:
        client.close()
        service.stop()


#: Zipfian admission point: a hot head that fits the cache, behind a
#: long tail of once-used keys streaming through probation.
ZIPF_CAPACITY = 512
ZIPF_HOT_KEYS = 400
ZIPF_REQUESTS = 16384
ZIPF_EXPONENT = 1.1
#: Fraction of references that are one-hit wonders (fresh tail keys).
ZIPF_TAIL_FRACTION = 0.875
ZIPF_SEED = 0x5EED


def _zipf_trace():
    """Deterministic key-index trace shared by both cache variants: a
    Zipf(s) head of ``ZIPF_HOT_KEYS`` keys, diluted by fresh never-
    repeated tail keys on ``ZIPF_TAIL_FRACTION`` of references."""
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(ZIPF_HOT_KEYS)]
    rng = random.Random(ZIPF_SEED)
    trace = []
    next_tail_key = ZIPF_HOT_KEYS
    for _ in range(ZIPF_REQUESTS):
        if rng.random() < ZIPF_TAIL_FRACTION:
            trace.append(next_tail_key)
            next_tail_key += 1
        else:
            trace.append(rng.choices(range(ZIPF_HOT_KEYS), weights=weights)[0])
    return trace, next_tail_key


def _measure_zipfian(trace, key_count, admission: bool) -> dict:
    """Replay the same Zipfian trace with and without TinyLFU admission."""
    label = "tinylfu" if admission else "slru"
    kernel = SimKernel(f"cache-bench-zipf-{label}")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(kernel, TAINT_MAP_IP, TAINT_MAP_PORT, 1).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    client = TaintMapClient(
        node,
        service.addresses,
        cache_capacity=ZIPF_CAPACITY,
        cache_admission=admission,
    )
    try:
        taints = [node.tree.taint_for_tag(f"zipf-{i}") for i in range(key_count)]
        for start in range(0, ZIPF_REQUESTS, BATCH):
            client.gids_for([taints[i] for i in trace[start : start + BATCH]])
        server = service.servers[0]
        snapshot = client.stats.snapshot()
        distinct = len(set(trace))
        return {
            "register_entries": server.stats.register_entries,
            "reregistration_entries": server.stats.register_entries - distinct,
            "cache_hits": snapshot["cache_hits"],
            "cache_misses": snapshot["cache_misses"],
            "cache_evictions": snapshot["cache_evictions"],
            "admission_rejections": snapshot["cache_admission_rejections"],
        }
    finally:
        client.close()
        service.stop()


def test_cache_capacity_vs_reregistration_traffic():
    results = {label: _measure(label, cap) for label, cap in CAPACITIES.items()}
    scan = _measure_scan_resistance()
    trace, key_count = _zipf_trace()
    zipf = {
        "workload": (
            f"Zipf(s={ZIPF_EXPONENT}) head of {ZIPF_HOT_KEYS} labels, "
            f"{ZIPF_TAIL_FRACTION:.0%} one-hit-wonder tail, "
            f"{ZIPF_REQUESTS} references, capacity {ZIPF_CAPACITY}"
        ),
        "slru": _measure_zipfian(trace, key_count, admission=False),
        "tinylfu": _measure_zipfian(trace, key_count, admission=True),
    }

    report = {
        "bench": "cache_ablation",
        "workload": (
            f"{PASSES} passes over {WORKING_SET} distinct labels, "
            f"{BATCH} labels per message (batched gids_for), 1 shard"
        ),
        "capacities": {k: ("off" if v == 0 else v) for k, v in CAPACITIES.items()},
        "results": results,
        "scan_resistance": scan,
        "zipfian_admission": zipf,
    }
    _RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # Segmented LRU: the protected hot set survives a one-pass cold
    # scan of 2x capacity (plain LRU would re-register all of it).
    assert scan["hot_survival_rate"] >= 0.9, scan

    # No cache: every pass re-registers the full working set.
    assert results["disabled"]["register_entries"] == PASSES * WORKING_SET
    # A bound >= working set behaves like unbounded: one registration each.
    assert results["64k"]["register_entries"] == WORKING_SET
    assert results["unbounded"]["register_entries"] == WORKING_SET
    assert results["unbounded"]["cache_evictions"] == 0
    # A bound below the working set thrashes: strictly more traffic than
    # the fitting cache, strictly less than no cache at all.
    assert (
        WORKING_SET
        < results["1k"]["register_entries"]
        <= PASSES * WORKING_SET
    )
    assert results["1k"]["cache_evictions"] > 0

    # TinyLFU admission on the identical Zipfian-head trace: the gate
    # must actually fire (ungated SLRU never rejects), collapse the
    # insert/evict churn several-fold (tail keys bounced at the door
    # instead of cycling through probation), and hold registration
    # traffic to the server at parity — the rejected keys were
    # one-hit wonders that would have missed next time anyway.
    assert zipf["tinylfu"]["admission_rejections"] > 0, zipf
    assert zipf["slru"]["admission_rejections"] == 0
    assert (
        zipf["tinylfu"]["cache_evictions"] < zipf["slru"]["cache_evictions"] / 3
    ), zipf
    # Parity is asserted on total misses (dominated by the tail's
    # compulsory misses) rather than raw re-registrations: sketch
    # collisions move with hash randomization run to run.
    assert zipf["tinylfu"]["cache_misses"] <= 1.05 * zipf["slru"]["cache_misses"], zipf
