"""§V-F Taint Map scalability: throughput and taint-population scaling.

The paper's conclusion: the Taint Map is a single-point service, but
overhead "does not increase significantly with the number of global
taints" thanks to client-side caching.  These benchmarks quantify both
the raw service throughput and the cached steady state.
"""

import pytest

from repro.bench.tables import taint_count_report
from repro.core.taintmap import TaintMapClient, TaintMapServer
from repro.runtime.cluster import TAINT_MAP_IP, TAINT_MAP_PORT
from repro.runtime.fs import SimFileSystem
from repro.runtime.kernel import SimKernel
from repro.runtime.modes import Mode
from repro.runtime.node import SimNode


@pytest.fixture()
def service():
    kernel = SimKernel("tm-bench")
    kernel.register_node(TAINT_MAP_IP)
    server = TaintMapServer(kernel, TAINT_MAP_IP, TAINT_MAP_PORT).start()
    fs = SimFileSystem()
    node = SimNode("n1", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    client = TaintMapClient(node, server.address)
    yield server, node, client
    server.stop()


def test_benchmark_register_throughput(benchmark, service):
    """Fresh-taint registrations per second (the worst case)."""
    server, node, client = service
    counter = [0]

    def register_fresh():
        counter[0] += 1
        taint = node.tree.taint_for_tag(f"t{counter[0]}")
        return client.gid_for(taint)

    benchmark(register_fresh)


def test_benchmark_cached_gid_lookup(benchmark, service):
    """The steady state: Fig. 9 step ② — no request at all."""
    server, node, client = service
    taint = node.tree.taint_for_tag("hot")
    client.gid_for(taint)
    requests_before = client.requests_sent
    benchmark(lambda: client.gid_for(taint))
    assert client.requests_sent == requests_before


def test_benchmark_lookup_throughput(benchmark, service):
    server, node, client = service
    gids = [client.gid_for(node.tree.taint_for_tag(f"l{i}")) for i in range(64)]
    uncached = TaintMapClient(node, server.address, cache_enabled=False)
    index = [0]

    def lookup():
        index[0] = (index[0] + 1) % len(gids)
        return uncached.taint_for(gids[index[0]])

    benchmark(lookup)


@pytest.mark.parametrize("population", [1, 10, 100, 500])
def test_benchmark_population_scaling(benchmark, service, population):
    """Per-byte gid resolution cost versus global-taint population."""
    server, node, client = service
    taints = [node.tree.taint_for_tag(f"p{population}-{i}") for i in range(population)]
    for taint in taints:
        client.gid_for(taint)

    def resolve_all():
        return sum(client.gid_for(t) for t in taints)

    benchmark(resolve_all)


def test_taint_count_report():
    print("\n" + taint_count_report())
