"""Durable Taint Map benchmark (PR 10): crash recovery + scale-in drain.

Two measured scenarios, results in ``BENCH_PR10.json``:

* **recovery** — preload N taints into a WAL-backed shard, crash and
  restart it, and verify the replay: every entry comes back
  (``entries_replayed == N``), the GID sequence resumes from its
  high-water mark (``renumbered_gids == 0``), and every pre-crash GID
  still resolves (``failed_lookups == 0``).  Recovery wall-clock and
  the steady-state durability overhead (WAL-on vs WAL-off registration
  throughput) are recorded alongside.

* **drain** — a 3-shard fleet scales in to 2 via
  ``RingCoordinator.drain``: the retired shard's entries (own and
  adopted) move to the survivors and its ring slot forwards.  The gate
  is the tentpole invariant: post-drain lookup success over **every
  GID ever allocated** is 100%, with the drained process stopped.

Acceptance (asserted, and re-checked by the CI canary):

* ``recovery.entries_replayed == PRELOAD``
* ``recovery.renumbered_gids == 0`` and ``recovery.failed_lookups == 0``
* ``drain.lookup_success_fraction == 1.0`` over every GID ever issued
"""

import json
import threading
import time
from pathlib import Path

from repro.core.durability import MemoryTaintMapStore
from repro.core.elastic import RingCoordinator
from repro.core.taintmap import ShardedTaintMapService, TaintMapClient, gid_shard
from repro.runtime.cluster import TAINT_MAP_IP, TAINT_MAP_PORT
from repro.runtime.fs import SimFileSystem
from repro.runtime.kernel import SimKernel
from repro.runtime.modes import Mode
from repro.runtime.node import SimNode

SENDER_THREADS = 8
OPS_PER_THREAD = 40
SERVICE_TIME = 0.0005
REPEATS = 3
#: Entries written before the crash (the state that must replay).
PRELOAD = 300
SNAPSHOT_EVERY = 128

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


def _boot(shard_count, namespace, store_factory=None, snapshot_every=None):
    kernel = SimKernel(f"durable-bench-{namespace}")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(
        kernel,
        TAINT_MAP_IP,
        TAINT_MAP_PORT,
        shard_count,
        service_time=SERVICE_TIME,
        store_factory=store_factory,
        snapshot_every=snapshot_every,
    ).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    return kernel, fs, service, node


def _timed_round(client, node, namespace):
    """8 threads of fresh registrations; returns registrations/second."""
    taints = [
        [node.tree.taint_for_tag(f"{namespace}-{t}-{i}") for i in range(OPS_PER_THREAD)]
        for t in range(SENDER_THREADS)
    ]
    barrier = threading.Barrier(SENDER_THREADS + 1)

    def sender(batch):
        barrier.wait()
        for taint in batch:
            client.gid_for(taint)

    threads = [
        threading.Thread(target=sender, args=(batch,), daemon=True)
        for batch in taints
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return SENDER_THREADS * OPS_PER_THREAD / elapsed


def _registration_throughput(namespace, store_factory=None, snapshot_every=None):
    kernel, fs, service, node = _boot(
        1, namespace, store_factory=store_factory, snapshot_every=snapshot_every
    )
    client = TaintMapClient(node, service.addresses)
    try:
        return max(
            _timed_round(client, node, f"{namespace}-r{r}") for r in range(REPEATS)
        )
    finally:
        client.close()
        service.stop()


def _crash_recovery(namespace):
    stores = {}
    kernel, fs, service, node = _boot(
        1,
        namespace,
        store_factory=lambda i: stores.setdefault(i, MemoryTaintMapStore()),
        snapshot_every=SNAPSHOT_EVERY,
    )
    client = TaintMapClient(node, service.addresses, cache_enabled=False)
    try:
        taints = [
            node.tree.taint_for_tag(f"{namespace}-pre-{i}") for i in range(PRELOAD)
        ]
        gids = [client.gid_for(t) for t in taints]
        watermark = service.servers[0].next_seq
        snapshots_written = service.servers[0].stats.snapshot()["wal_snapshots"]

        recover_started = time.perf_counter()
        server = service.restart_shard(0)
        recover_elapsed = time.perf_counter() - recover_started

        snap = server.stats.snapshot()
        checker = TaintMapClient(node, service.addresses, cache_enabled=False)
        failed = sum(1 for gid in gids if checker.taint_for(gid) is None)
        renumbered = sum(
            1 for taint, gid in zip(taints, gids) if checker.gid_for(taint) != gid
        )
        checker.close()
        return {
            "entries_preloaded": PRELOAD,
            "entries_replayed": snap["global_taints"],
            "wal_replayed": snap["wal_replayed"],
            "wal_snapshots_before_crash": snapshots_written,
            "next_seq_resumed": server.next_seq == watermark,
            "failed_lookups": failed,
            "renumbered_gids": renumbered,
            "recovery_seconds": recover_elapsed,
        }
    finally:
        client.close()
        service.stop()


def _drain(namespace):
    kernel, fs, service, node = _boot(3, namespace)
    client = TaintMapClient(node, service.addresses, cache_enabled=False)
    try:
        taints = [
            node.tree.taint_for_tag(f"{namespace}-{i}") for i in range(PRELOAD)
        ]
        gids = [client.gid_for(t) for t in taints]
        per_shard = {
            shard: sum(1 for g in gids if gid_shard(g) == shard) for shard in (0, 1, 2)
        }

        drain_started = time.perf_counter()
        coordinator = RingCoordinator(service)
        ring = coordinator.drain(2)
        drain_elapsed = time.perf_counter() - drain_started
        service.servers[2].stop()

        checker = TaintMapClient(node, service.addresses, cache_enabled=False)
        checker.adopt_ring(ring)
        resolved = sum(1 for gid in gids if checker.taint_for(gid) is not None)
        renumbered = sum(
            1 for taint, gid in zip(taints, gids) if checker.gid_for(taint) != gid
        )
        checker.close()
        return {
            "gids_allocated": len(gids),
            "gids_per_shard_before_drain": per_shard,
            "drain_entries_sent": coordinator.drain_entries_sent,
            "lookup_success_fraction": resolved / len(gids),
            "renumbered_gids": renumbered,
            "ring_epoch": ring.epoch,
            "retired_shards": sorted(ring.retired),
            "drain_seconds": drain_elapsed,
        }
    finally:
        client.close()
        service.stop()


def test_crash_recovery_and_drain():
    baseline = _registration_throughput("baseline")
    durable = _registration_throughput(
        "durable",
        store_factory=lambda i: MemoryTaintMapStore(),
        snapshot_every=SNAPSHOT_EVERY,
    )
    recovery = _crash_recovery("recover")
    drain = _drain("drain")

    report = {
        "bench": "durable_recovery",
        "workload": (
            f"{SENDER_THREADS} threads x {OPS_PER_THREAD} fresh registrations, "
            f"service_time={SERVICE_TIME}s/shard, {PRELOAD} preloaded taints, "
            f"snapshot_every={SNAPSHOT_EVERY}"
        ),
        "repeats": REPEATS,
        "results": {
            "baseline_registrations_per_s": baseline,
            "durable_registrations_per_s": durable,
            "durability_overhead_fraction": 1 - durable / baseline,
        },
        "recovery": recovery,
        "drain": drain,
    }
    _RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert recovery["entries_replayed"] == PRELOAD, recovery
    assert recovery["next_seq_resumed"], recovery
    assert recovery["failed_lookups"] == 0, recovery
    assert recovery["renumbered_gids"] == 0, recovery
    assert drain["drain_entries_sent"] > 0, drain
    assert drain["lookup_success_fraction"] == 1.0, drain
    assert drain["renumbered_gids"] == 0, drain
