"""Adaptive coalescing window vs static windows (ISSUE 5 tentpole).

Two SIM workloads bracket the tuning space:

* **Idle**: one thread registering fresh taints sequentially — every
  microsecond of coalescing window is pure added latency.  Wide static
  windows lose ~3x here; the adaptive controller must collapse its
  window to 0 and match the best static latency.
* **Loaded**: many sender threads, each resolving one fresh taint per
  message (the PR 3 workload).  Concurrent arrivals coalesce
  *naturally* — entries queue into the next window while a flush is in
  flight — so large static delays mostly stall the sender pipeline,
  and moderate/zero windows win throughput.  The adaptive controller
  must relax toward that optimum instead of over-widening, while its
  round-trip count still shows real multi-entry coalescing.

No static window is safe across both workloads unless it is already
the tuned optimum; the adaptive controller has to track the best
static choice at each extreme *without being told which extreme it is
on*.  Results land in ``BENCH_PR5.json`` at the repository root.
Gates use best-of-``REPEATS`` and an absolute slack on top of the 5%
relative bound to stay robust under CI scheduling noise; round-trip
counts (deterministic-ish) back up the timing gates.
"""

import json
import statistics
import threading
import time
from pathlib import Path

from repro.core.aio_transport import AsyncTaintMapClient
from repro.core.taintmap import ShardedTaintMapService
from repro.runtime.cluster import TAINT_MAP_IP, TAINT_MAP_PORT
from repro.runtime.fs import SimFileSystem
from repro.runtime.kernel import SimKernel
from repro.runtime.modes import Mode
from repro.runtime.node import SimNode

#: Static windows to race against: the idle optimum (0), the transport
#: default (200 µs), and a generous load-tuned window (1000 µs).
STATIC_WINDOWS_US = (0.0, 200.0, 1000.0)
REPEATS = 3

# -- idle workload ---------------------------------------------------------- #
IDLE_MESSAGES = 150
#: Ops to skip before measuring: the adaptive window needs ~10 flushes
#: to decay from its 200 µs starting point to 0.
IDLE_WARMUP = 30
IDLE_SERVICE_TIME = 0.0002

# -- loaded workload -------------------------------------------------------- #
SENDER_THREADS = 16
MESSAGES_PER_THREAD = 25
LOAD_SERVICE_TIME = 0.0005

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"


def _client(node, addresses, window_us):
    """``window_us=None`` selects the adaptive default; a number pins
    the classic static window."""
    if window_us is None:
        return AsyncTaintMapClient(node, addresses)
    return AsyncTaintMapClient(node, addresses, coalesce_window_us=window_us)


def _fixture(namespace, service_time):
    kernel = SimKernel(f"adaptive-bench-{namespace}")
    kernel.register_node(TAINT_MAP_IP)
    fs = SimFileSystem()
    service = ShardedTaintMapService(
        kernel, TAINT_MAP_IP, TAINT_MAP_PORT, 1, service_time=service_time
    ).start()
    node = SimNode("n", kernel.register_node("10.0.0.1"), 1, kernel, fs, Mode.DISTA)
    return service, node


def _measure_idle(window_us, namespace):
    """Sequential lone registrations; returns mean steady-state
    per-registration latency in seconds."""
    service, node = _fixture(namespace, IDLE_SERVICE_TIME)
    client = _client(node, service.addresses, window_us)
    try:
        taints = [
            node.tree.taint_for_tag(f"{namespace}-{i}") for i in range(IDLE_MESSAGES)
        ]
        latencies = []
        for i, taint in enumerate(taints):
            started = time.perf_counter()
            client.gid_for(taint)
            latencies.append(time.perf_counter() - started)
        return statistics.fmean(latencies[IDLE_WARMUP:])
    finally:
        client.close()
        service.stop()


def _measure_loaded(window_us, namespace):
    """The PR 3 many-small-messages workload; returns
    (messages/s, client round-trips)."""
    service, node = _fixture(namespace, LOAD_SERVICE_TIME)
    client = _client(node, service.addresses, window_us)
    try:
        taints = [
            [
                node.tree.taint_for_tag(f"{namespace}-{t}-{i}")
                for i in range(MESSAGES_PER_THREAD)
            ]
            for t in range(SENDER_THREADS)
        ]
        barrier = threading.Barrier(SENDER_THREADS + 1)

        def sender(batch):
            barrier.wait()
            for taint in batch:
                client.gid_for(taint)

        threads = [
            threading.Thread(target=sender, args=(batch,), daemon=True)
            for batch in taints
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        total = SENDER_THREADS * MESSAGES_PER_THREAD
        assert service.global_taint_count() == total
        return total / elapsed, client.requests_sent
    finally:
        client.close()
        service.stop()


def _configs():
    yield "adaptive", None
    for window in STATIC_WINDOWS_US:
        yield f"static_{window:g}us", window


def test_adaptive_matches_best_static_at_both_extremes():
    idle, loaded = {}, {}
    for name, window in _configs():
        idle[name] = min(
            _measure_idle(window, f"idle-{name}-r{r}") for r in range(REPEATS)
        )
        best_tput, fewest_rt = 0.0, None
        for r in range(REPEATS):
            tput, roundtrips = _measure_loaded(window, f"load-{name}-r{r}")
            best_tput = max(best_tput, tput)
            fewest_rt = roundtrips if fewest_rt is None else min(fewest_rt, roundtrips)
        loaded[name] = (best_tput, fewest_rt)

    statics = [name for name, _ in _configs() if name != "adaptive"]
    best_idle_static = min(idle[name] for name in statics)
    best_load_static = max(loaded[name][0] for name in statics)
    fewest_static_rt = min(loaded[name][1] for name in statics)

    report = {
        "bench": "adaptive_coalescing",
        "workloads": {
            "idle": (
                f"1 thread x {IDLE_MESSAGES} sequential fresh registrations "
                f"(first {IDLE_WARMUP} skipped), service_time={IDLE_SERVICE_TIME}s"
            ),
            "loaded": (
                f"{SENDER_THREADS} threads x {MESSAGES_PER_THREAD} small messages "
                f"(1 fresh registration each), service_time={LOAD_SERVICE_TIME}s"
            ),
        },
        "repeats": REPEATS,
        "idle_mean_latency_s": idle,
        "loaded": {
            name: {
                "messages_per_s": tput,
                "taint_map_roundtrips": roundtrips,
            }
            for name, (tput, roundtrips) in loaded.items()
        },
        "idle_adaptive_vs_best_static": idle["adaptive"] / best_idle_static,
        "loaded_adaptive_vs_best_static": loaded["adaptive"][0] / best_load_static,
    }
    _RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # Idle: within 5% of the best static window (plus 100 µs absolute
    # slack against scheduler noise at these sub-millisecond latencies).
    assert idle["adaptive"] <= best_idle_static * 1.05 + 1e-4, (
        f"adaptive idle latency {idle['adaptive'] * 1e6:.0f}us vs best static "
        f"{best_idle_static * 1e6:.0f}us"
    )
    # Loaded: throughput parity with the best static window, and the
    # round-trip count must show real coalescing (well under one
    # round-trip per message) rather than parity-by-fragmentation.
    total = SENDER_THREADS * MESSAGES_PER_THREAD
    assert loaded["adaptive"][1] <= total / 2, (
        f"adaptive needed {loaded['adaptive'][1]} round-trips for {total} "
        f"messages — windows are not coalescing"
    )
    assert loaded["adaptive"][0] >= best_load_static * 0.85, (
        f"adaptive throughput {loaded['adaptive'][0]:.0f} msg/s vs best static "
        f"{best_load_static:.0f} msg/s (fewest static round-trips: "
        f"{fewest_static_rt})"
    )
