"""Table I — the 23 instrumented JNI methods.

Not a timing benchmark: this regenerates and validates the static
instrumentation inventory, and benchmarks agent attach/detach cost
(the per-JVM instrumentation overhead at launch).
"""

from repro.bench.tables import table1
from repro.core.agent import INSTRUMENTED_METHODS, DisTAAgent
from repro.runtime.cluster import Cluster
from repro.runtime.modes import Mode


def test_table1_report():
    report = table1()
    print("\n" + report)
    assert "23 methods in total" in report


def test_benchmark_agent_attach(benchmark):
    """Cost of patching all instrumentation points on one JVM."""
    cluster = Cluster(Mode.DISTA)
    cluster.add_node("seed")  # boots the Taint Map on start
    with cluster:
        agent = DisTAAgent(cluster.taint_map_server.address)
        counter = [0]

        def attach_detach():
            counter[0] += 1
            node = cluster.add_node(f"bench-{counter[0]}")
            agent.detach(node)  # cluster auto-attached; reset first
            agent.attach(node)
            agent.detach(node)

        benchmark(attach_detach)


def test_wrapper_type_distribution():
    by_type = {}
    for method in INSTRUMENTED_METHODS:
        by_type.setdefault(method.wrapper_type, []).append(method)
    # Paper §III-B/C: 2 TCP stream methods + friends are Type 1, 3 UDP
    # methods are Type 2, the dispatcher/direct-buffer family is Type 3.
    assert len(by_type[1]) == 5
    assert len(by_type[2]) == 3
    assert len(by_type[3]) == 15
