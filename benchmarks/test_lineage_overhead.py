"""Flow-lineage capture overhead: on vs off at the fraction extremes (ISSUE 9).

Runs the :class:`~repro.obs.profiler.LineageOverheadSweep` over the SIM
systems at 0% and 100% tainted traffic and writes the result to
``BENCH_PR9.json`` at the repository root.

Both legs are ``Mode.DISTA`` SIM runs, so the ratio prices exactly what
the observability layer adds.  The gates:

* the **structural contract** everywhere: zero store evictions, no flows
  at 0% tainted (the recorder dispatches behind the ``labels is None``
  fast path — untainted traffic never constructs a lineage event), and
  at 100% at least one *completed* flow tree per system;
* at least one system reconstructs a **multi-hop** tree (≥ 2 hops) with
  depth ≥ 3 — source → hop → hop — proving cross-node stitching, not
  just point capture;
* capture stays within the 1.05× ceiling at both extremes.  The sweep
  runs the two legs paired (off, on, off, on, … plus a discarded warmup
  pair) and gates on the aggregate ratio ``sum(on)/sum(off)``: the
  marginal cost being priced is smaller than the workloads' run-to-run
  spread, and independent minima let one leg land in its extreme left
  tail while the other doesn't.
"""

from pathlib import Path

from repro.obs.profiler import (
    DEFAULT_SYSTEMS,
    LINEAGE_OVERHEAD_CEILING,
    LineageOverheadSweep,
)

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"


def test_lineage_overhead_sim_systems():
    sweep = LineageOverheadSweep(systems=DEFAULT_SYSTEMS, repeats=7)
    points = sweep.run()
    sweep.write(_RESULTS_PATH)
    print()
    print(sweep.render())

    assert len(points) == len(DEFAULT_SYSTEMS) * len(sweep.fractions)
    assert sweep.broken_points() == []

    by_system: dict = {}
    for point in points:
        by_system.setdefault(point.system, {})[point.tainted_fraction] = point

    for system, curve in by_system.items():
        zero, full = curve[0.0], curve[1.0]
        # 0%: the recorder rides the fast path — nothing is captured,
        # nothing is paid for beyond the attribute checks.
        assert zero.flows == 0, f"{system}@0%: lineage captured untainted traffic"
        assert zero.evicted == 0
        # 100%: flows reconstruct, complete, and nothing was evicted
        # (the store bound is far above SIM populations).
        assert full.flows > 0, f"{system}@100%: no flows captured"
        assert full.completed >= 1, f"{system}@100%: no completed flow tree"
        assert full.evicted == 0, f"{system}@100%: store evicted flows"
        # The observability layer respects the overhead story.
        for fraction, point in curve.items():
            assert point.lineage_ratio <= LINEAGE_OVERHEAD_CEILING, (
                f"{system}@{fraction:.0%}: lineage capture "
                f"{point.lineage_ratio:.3f}x exceeds the "
                f"{LINEAGE_OVERHEAD_CEILING}x ceiling"
            )

    # Cross-node stitching: at least one system's 100% leg reconstructs
    # a multi-hop tree (source -> node -> node), not just single edges.
    fulls = [curve[1.0] for curve in by_system.values()]
    assert any(p.multi_hop >= 1 for p in fulls), "no multi-hop flow tree anywhere"
    assert any(p.max_depth >= 3 for p in fulls), "no tree deeper than one hop"
