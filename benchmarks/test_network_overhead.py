"""§V-F network overhead — the fixed 5× wire-byte claim."""

from repro.bench.overhead import measure_network_overhead
from repro.bench.tables import network_overhead_report
from repro.core import wire
from repro.microbench.cases import CASES_BY_NAME
from repro.microbench.workload import run_case
from repro.runtime.modes import Mode


def test_network_overhead_report():
    report = network_overhead_report()
    print("\n" + report)


def test_tcp_overhead_is_exactly_5x(bench_size):
    result = measure_network_overhead(size=bench_size)
    assert abs(result.ratio - 5.0) < 0.01


def test_udp_overhead_is_about_5x(bench_size):
    """Datagrams add a constant envelope header on top of the 5×."""
    case = CASES_BY_NAME["jre_datagram"]
    original = run_case(case, Mode.ORIGINAL, size=bench_size)
    dista = run_case(case, Mode.DISTA, size=bench_size)
    ratio = dista.wire_bytes / original.wire_bytes
    assert 4.9 <= ratio <= 5.2


def test_benchmark_cell_encode(benchmark, bench_size):
    """Raw codec throughput: encode a single-taint buffer."""
    from repro.taint import LocalId, TBytes, TaintTree

    tree = TaintTree(LocalId("10.0.0.1", 1))
    taint = tree.taint_for_tag("t")
    data = TBytes.tainted(b"x" * bench_size, taint)
    benchmark(lambda: wire.encode_cells(data, lambda label: 1 if label else 0))


def test_benchmark_cell_decode(benchmark, bench_size):
    from repro.taint import LocalId, TBytes, TaintTree

    tree = TaintTree(LocalId("10.0.0.1", 1))
    taint = tree.taint_for_tag("t")
    data = TBytes.tainted(b"x" * bench_size, taint)
    cells = wire.encode_cells(data, lambda label: 1 if label else 0)

    def decode():
        decoder = wire.CellDecoder()
        return decoder.feed(cells, lambda gid: taint)

    benchmark(decode)
