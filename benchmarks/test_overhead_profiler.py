"""Baseline-vs-DisTA overhead profile over the SIM workloads (ISSUE 4).

Runs the :class:`~repro.obs.profiler.OverheadProfiler` over three real
system workloads — each once uninstrumented (``Mode.BASELINE``) and once
under full DisTA with the SIM scenario — and writes the §V-F-shaped
table to ``BENCH_PR4.json`` at the repository root.

The acceptance gate is the telemetry canary, not a timing bound (CI
timing is noisy): every DisTA run must report **non-zero crossings**
and non-zero Taint Map RPCs in its own telemetry.  A DisTA run with
zero crossings means the instrumentation silently stopped observing —
an overhead table built on it would be meaningless.
"""

from pathlib import Path

from repro.obs.profiler import DEFAULT_SYSTEMS, OverheadProfiler

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


def test_overhead_profile_sim_systems():
    profiler = OverheadProfiler(systems=DEFAULT_SYSTEMS)
    profiles = profiler.run()
    profiler.write(_RESULTS_PATH)
    print()
    print(profiler.render())

    assert len(profiles) >= 3
    assert profiler.broken_systems() == []
    for profile in profiles:
        assert profile.crossings > 0, f"{profile.system}: zero crossings"
        assert profile.taintmap_rpcs > 0, f"{profile.system}: zero Taint Map RPCs"
        assert profile.tainted_bytes > 0, f"{profile.system}: zero tainted bytes"
        assert profile.baseline_seconds > 0
        assert profile.dista_seconds > 0
        assert profile.rpc_p95_seconds > 0
