"""Table VI — real-system runtime overhead (5 systems × 5 configurations)."""

import pytest

from repro.bench.overhead import run_table6
from repro.bench.tables import table3, table4, table6
from repro.runtime.modes import Mode
from repro.systems import ALL_SYSTEMS
from repro.systems.common import SDT, SIM

CONFIGS = [
    ("original", Mode.ORIGINAL, None),
    ("phosphor-sdt", Mode.PHOSPHOR, SDT),
    ("dista-sdt", Mode.DISTA, SDT),
    ("phosphor-sim", Mode.PHOSPHOR, SIM),
    ("dista-sim", Mode.DISTA, SIM),
]


@pytest.mark.parametrize("system", list(ALL_SYSTEMS), ids=lambda s: s.replace("/", "_"))
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c[0])
def test_benchmark_system(benchmark, system, config):
    _, mode, scenario = config
    module = ALL_SYSTEMS[system]
    benchmark.pedantic(
        lambda: module.run_workload(mode, scenario), rounds=2, iterations=1
    )


def test_table3_and_4_reports():
    print("\n" + table3())
    print("\n" + table4())


def test_table6_report():
    report = table6(repeats=2)
    print("\n" + report)
    assert "Average" in report


def test_dista_ordering_holds_per_scenario():
    rows = run_table6(repeats=2)
    average = next(r for r in rows if r.name == "Average")
    p_sdt, d_sdt, p_sim, d_sim = average.overheads()
    assert d_sdt > 1.0 and d_sim > 1.0
    # DisTA adds to Phosphor, in both scenarios (paper: +0.31x / +0.64x).
    assert d_sdt > p_sdt * 0.95
    assert d_sim > p_sim * 0.95
