"""Table II — the 30 micro-benchmark cases (soundness/precision, RQ1).

Regenerates the table and benchmarks one representative case per
protocol group under DisTA.
"""

import pytest

from repro.bench.tables import table2
from repro.microbench.cases import CASES, CASES_BY_NAME
from repro.microbench.workload import run_case
from repro.runtime.modes import Mode

REPRESENTATIVES = [
    "socket_bytes_bulk",
    "jre_datagram",
    "jre_socket_channel",
    "jre_datagram_channel",
    "jre_aio",
    "jre_http",
    "netty_socket",
    "netty_datagram",
    "netty_http",
]


def test_table2_report():
    report = table2(size=4096)
    print("\n" + report)
    assert report.count("NO") == 0, "a case was unsound or imprecise"
    assert "30 cases" in report


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_benchmark_case_dista(benchmark, name, bench_size):
    case = CASES_BY_NAME[name]

    def run():
        result = run_case(case, Mode.DISTA, size=bench_size)
        assert result.passed
        return result

    benchmark(run)


def test_all_30_cases_pass_under_dista():
    failures = [
        c.name
        for c in CASES
        if not run_case(c, Mode.DISTA, size=2048).passed
    ]
    assert failures == []
